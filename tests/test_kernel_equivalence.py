"""Cross-backend equivalence: NumPy kernel == pure-Python kernel, bit for bit.

The vectorized backend is not allowed to be "close": every registry
program must reach the *identical* fixpoint with *identical* work
counters on both backends, on the single-node MRA evaluator and on the
distributed engines (where the simulated clock must agree too, since
``BatchResult.ops`` prices compute time).  Under a seeded fault
schedule the recovery path must also behave identically --
``EvalResult.faults`` and all.

The property-based section drives both kernels over random graphs so
the equivalence claim does not quietly specialise to the fixture
graphs.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.distributed.async_engine import AsyncEngine
from repro.distributed.chaos_harness import default_graph, schedule_for
from repro.distributed.cluster import ClusterConfig
from repro.distributed.sync_engine import SyncEngine
from repro.engine import MRAEvaluator
from repro.graphs import random_dag, rmat
from repro.programs import PROGRAMS
from repro.runtime import HAVE_NUMPY

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy backend not installed"
)

ALL_PROGRAMS = sorted(PROGRAMS)

#: engines exercised per program in the distributed sweep; naive mode
#: rides along on two programs (it routes whole-table sweeps, not deltas)
DISTRIBUTED_PROGRAMS = ("sssp", "cc", "pagerank", "katz", "viterbi", "dag_paths")


def _assert_identical(python_result, numpy_result, *, clock: bool = True):
    assert numpy_result.backend == "numpy"
    assert python_result.values == numpy_result.values
    assert python_result.stop_reason == numpy_result.stop_reason
    assert python_result.counters.snapshot() == numpy_result.counters.snapshot()
    if clock:
        assert python_result.simulated_seconds == numpy_result.simulated_seconds


@pytest.mark.parametrize("program", ALL_PROGRAMS)
def test_mra_fixpoint_identical(program):
    spec = PROGRAMS[program]
    graph = default_graph(program, seed=7)
    python_result = MRAEvaluator(spec.plan(graph), backend="python").run()
    numpy_result = MRAEvaluator(spec.plan(graph), backend="numpy").run()
    _assert_identical(python_result, numpy_result, clock=False)
    assert python_result.counters.iterations == numpy_result.counters.iterations


@pytest.mark.parametrize("program", DISTRIBUTED_PROGRAMS)
def test_sync_engine_identical(program):
    spec = PROGRAMS[program]
    graph = default_graph(program, seed=7)
    cluster = ClusterConfig(num_workers=4)
    python_result = SyncEngine(spec.plan(graph), cluster, backend="python").run()
    numpy_result = SyncEngine(spec.plan(graph), cluster, backend="numpy").run()
    _assert_identical(python_result, numpy_result)


@pytest.mark.parametrize("program", DISTRIBUTED_PROGRAMS)
def test_async_engine_identical(program):
    spec = PROGRAMS[program]
    graph = default_graph(program, seed=7)
    cluster = ClusterConfig(num_workers=4)
    python_result = AsyncEngine(spec.plan(graph), cluster, backend="python").run()
    numpy_result = AsyncEngine(spec.plan(graph), cluster, backend="numpy").run()
    _assert_identical(python_result, numpy_result)


@pytest.mark.parametrize("program", ("sssp", "pagerank"))
def test_naive_mode_identical(program):
    spec = PROGRAMS[program]
    graph = default_graph(program, seed=7)
    cluster = ClusterConfig(num_workers=4)
    python_result = SyncEngine(
        spec.plan(graph), cluster, mode="naive", backend="python"
    ).run()
    numpy_result = SyncEngine(
        spec.plan(graph), cluster, mode="naive", backend="numpy"
    ).run()
    _assert_identical(python_result, numpy_result)


@pytest.mark.chaos
@pytest.mark.parametrize("program", ("sssp", "pagerank", "dag_paths"))
@pytest.mark.parametrize("engine_cls", (SyncEngine, AsyncEngine))
def test_chaos_recovery_identical(program, engine_cls, tmp_path):
    """Same seeded fault schedule => same crashes, replays and fixpoint."""
    from repro.distributed.fault import Checkpointer

    spec = PROGRAMS[program]
    graph = default_graph(program, seed=7)
    cluster = ClusterConfig(num_workers=4)
    reference = engine_cls(spec.plan(graph), cluster, backend="python").run()
    schedule = schedule_for(reference.simulated_seconds, 4, seed=11)
    chaotic_cluster = cluster.with_faults(schedule)

    results = {}
    for backend in ("python", "numpy"):
        kwargs = dict(
            backend=backend,
            checkpointer=Checkpointer(tmp_path / backend),
            run_name=f"chaos-{backend}",
        )
        if engine_cls is SyncEngine:
            kwargs["checkpoint_every"] = 4
        results[backend] = engine_cls(
            spec.plan(graph), chaotic_cluster, **kwargs
        ).run()

    python_result, numpy_result = results["python"], results["numpy"]
    _assert_identical(python_result, numpy_result)
    assert python_result.faults is not None
    assert python_result.faults.snapshot() == numpy_result.faults.snapshot()
    # the schedule really fired -- the equality above is not vacuous
    assert sum(python_result.faults.snapshot().values()) > 0


# -- property-based sweep ------------------------------------------------------

#: vertex-domain programs safe on arbitrary digraphs (cyclic included)
CYCLIC_SAFE = ("sssp", "cc", "pagerank", "katz", "adsorption", "lca")
#: programs requiring acyclic inputs (path counting diverges on cycles)
DAG_ONLY = ("dag_paths", "cost", "viterbi")


@settings(max_examples=12, deadline=None)
@given(
    program=st.sampled_from(CYCLIC_SAFE),
    num_vertices=st.integers(min_value=8, max_value=90),
    density=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_random_graphs_mra(program, num_vertices, density, seed):
    graph = rmat(num_vertices, num_vertices * density, seed=seed, name="hyp")
    spec = PROGRAMS[program]
    python_result = MRAEvaluator(spec.plan(graph), backend="python").run()
    numpy_result = MRAEvaluator(spec.plan(graph), backend="numpy").run()
    _assert_identical(python_result, numpy_result, clock=False)


@settings(max_examples=8, deadline=None)
@given(
    program=st.sampled_from(DAG_ONLY),
    num_vertices=st.integers(min_value=8, max_value=70),
    density=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_random_dags_mra(program, num_vertices, density, seed):
    graph = random_dag(num_vertices, num_vertices * density, seed=seed, name="hyp-dag")
    spec = PROGRAMS[program]
    python_result = MRAEvaluator(spec.plan(graph), backend="python").run()
    numpy_result = MRAEvaluator(spec.plan(graph), backend="numpy").run()
    _assert_identical(python_result, numpy_result, clock=False)


@settings(max_examples=6, deadline=None)
@given(
    program=st.sampled_from(("sssp", "pagerank")),
    num_vertices=st.integers(min_value=8, max_value=60),
    seed=st.integers(min_value=0, max_value=2**16),
    workers=st.integers(min_value=1, max_value=6),
)
def test_property_random_graphs_distributed(program, num_vertices, seed, workers):
    graph = rmat(num_vertices, num_vertices * 4, seed=seed, name="hyp-dist")
    spec = PROGRAMS[program]
    cluster = ClusterConfig(num_workers=workers)
    python_result = SyncEngine(spec.plan(graph), cluster, backend="python").run()
    numpy_result = SyncEngine(spec.plan(graph), cluster, backend="numpy").run()
    _assert_identical(python_result, numpy_result)
