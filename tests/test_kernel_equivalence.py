"""Cross-backend equivalence: every backend == pure-Python kernel, bit for bit.

The vectorized backends (numpy, sparse, jit when numba is installed)
are not allowed to be "close": every registry program must reach the
*identical* fixpoint with *identical* work counters on every backend,
on the single-node MRA evaluator and on the distributed engines (where
the simulated clock must agree too, since ``BatchResult.ops`` prices
compute time).  Under a seeded fault schedule the recovery path must
also behave identically -- ``EvalResult.faults`` and all.

The property-based section drives the kernels over random graphs so
the equivalence claim does not quietly specialise to the fixture
graphs.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.distributed.async_engine import AsyncEngine
from repro.distributed.chaos_harness import default_graph, schedule_for
from repro.distributed.cluster import ClusterConfig
from repro.distributed.sync_engine import SyncEngine
from repro.engine import MRAEvaluator
from repro.graphs import random_dag, rmat
from repro.programs import PROGRAMS
from repro.runtime import HAVE_NUMPY, available_backends, get_kernel

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy backend not installed"
)

ALL_PROGRAMS = sorted(PROGRAMS)

#: every available backend measured against the python reference
BACKENDS = [b for b in available_backends() if b != "python"]

#: engines exercised per program in the distributed sweep; naive mode
#: rides along on two programs (it routes whole-table sweeps, not deltas)
DISTRIBUTED_PROGRAMS = ("sssp", "cc", "pagerank", "katz", "viterbi", "dag_paths")

#: selective-aggregate programs run under sync delta-stepping too (the
#: sparse backend's bucket structure must not change a single bit)
DELTA_STEP_PROGRAMS = ("sssp", "cc", "viterbi")


def _assert_identical(python_result, other_result, backend, *, clock: bool = True):
    assert other_result.backend == backend
    assert python_result.values == other_result.values
    assert python_result.stop_reason == other_result.stop_reason
    assert python_result.counters.snapshot() == other_result.counters.snapshot()
    if clock:
        assert python_result.simulated_seconds == other_result.simulated_seconds


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("program", ALL_PROGRAMS)
def test_mra_fixpoint_identical(program, backend):
    spec = PROGRAMS[program]
    graph = default_graph(program, seed=7)
    if not get_kernel(backend).supports_plan(spec.plan(graph)):
        pytest.skip(f"{backend} backend refuses {program}'s semiring carrier")
    python_result = MRAEvaluator(spec.plan(graph), backend="python").run()
    other_result = MRAEvaluator(spec.plan(graph), backend=backend).run()
    _assert_identical(python_result, other_result, backend, clock=False)
    assert python_result.counters.iterations == other_result.counters.iterations


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("program", DISTRIBUTED_PROGRAMS)
def test_sync_engine_identical(program, backend):
    spec = PROGRAMS[program]
    graph = default_graph(program, seed=7)
    cluster = ClusterConfig(num_workers=4)
    python_result = SyncEngine(spec.plan(graph), cluster, backend="python").run()
    other_result = SyncEngine(spec.plan(graph), cluster, backend=backend).run()
    _assert_identical(python_result, other_result, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("program", DELTA_STEP_PROGRAMS)
def test_sync_delta_stepping_identical(program, backend):
    spec = PROGRAMS[program]
    graph = default_graph(program, seed=7)
    cluster = ClusterConfig(num_workers=4)
    python_result = SyncEngine(
        spec.plan(graph), cluster, delta_stepping=True, backend="python"
    ).run()
    other_result = SyncEngine(
        spec.plan(graph), cluster, delta_stepping=True, backend=backend
    ).run()
    _assert_identical(python_result, other_result, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("program", DISTRIBUTED_PROGRAMS)
def test_async_engine_identical(program, backend):
    spec = PROGRAMS[program]
    graph = default_graph(program, seed=7)
    cluster = ClusterConfig(num_workers=4)
    python_result = AsyncEngine(spec.plan(graph), cluster, backend="python").run()
    other_result = AsyncEngine(spec.plan(graph), cluster, backend=backend).run()
    _assert_identical(python_result, other_result, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("program", ("sssp", "pagerank"))
def test_naive_mode_identical(program, backend):
    spec = PROGRAMS[program]
    graph = default_graph(program, seed=7)
    cluster = ClusterConfig(num_workers=4)
    python_result = SyncEngine(
        spec.plan(graph), cluster, mode="naive", backend="python"
    ).run()
    other_result = SyncEngine(
        spec.plan(graph), cluster, mode="naive", backend=backend
    ).run()
    _assert_identical(python_result, other_result, backend)


@pytest.mark.chaos
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("program", ("sssp", "pagerank", "dag_paths"))
@pytest.mark.parametrize("engine_cls", (SyncEngine, AsyncEngine))
def test_chaos_recovery_identical(program, engine_cls, backend, tmp_path):
    """Same seeded fault schedule => same crashes, replays and fixpoint."""
    from repro.distributed.fault import Checkpointer

    spec = PROGRAMS[program]
    graph = default_graph(program, seed=7)
    cluster = ClusterConfig(num_workers=4)
    reference = engine_cls(spec.plan(graph), cluster, backend="python").run()
    schedule = schedule_for(reference.simulated_seconds, 4, seed=11)
    chaotic_cluster = cluster.with_faults(schedule)

    results = {}
    for leg in ("python", backend):
        kwargs = dict(
            backend=leg,
            checkpointer=Checkpointer(tmp_path / leg),
            run_name=f"chaos-{leg}",
        )
        if engine_cls is SyncEngine:
            kwargs["checkpoint_every"] = 4
        results[leg] = engine_cls(
            spec.plan(graph), chaotic_cluster, **kwargs
        ).run()

    python_result, other_result = results["python"], results[backend]
    _assert_identical(python_result, other_result, backend)
    assert python_result.faults is not None
    assert python_result.faults.snapshot() == other_result.faults.snapshot()
    # the schedule really fired -- the equality above is not vacuous
    assert sum(python_result.faults.snapshot().values()) > 0


# -- property-based sweep ------------------------------------------------------

#: vertex-domain programs safe on arbitrary digraphs (cyclic included)
CYCLIC_SAFE = ("sssp", "cc", "pagerank", "katz", "adsorption", "lca")
#: programs requiring acyclic inputs (path counting diverges on cycles)
DAG_ONLY = ("dag_paths", "cost", "viterbi")


@settings(max_examples=12, deadline=None)
@given(
    backend=st.sampled_from(BACKENDS),
    program=st.sampled_from(CYCLIC_SAFE),
    num_vertices=st.integers(min_value=8, max_value=90),
    density=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_random_graphs_mra(program, num_vertices, density, seed, backend):
    graph = rmat(num_vertices, num_vertices * density, seed=seed, name="hyp")
    spec = PROGRAMS[program]
    python_result = MRAEvaluator(spec.plan(graph), backend="python").run()
    other_result = MRAEvaluator(spec.plan(graph), backend=backend).run()
    _assert_identical(python_result, other_result, backend, clock=False)


@settings(max_examples=8, deadline=None)
@given(
    backend=st.sampled_from(BACKENDS),
    program=st.sampled_from(DAG_ONLY),
    num_vertices=st.integers(min_value=8, max_value=70),
    density=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_random_dags_mra(program, num_vertices, density, seed, backend):
    graph = random_dag(num_vertices, num_vertices * density, seed=seed, name="hyp-dag")
    spec = PROGRAMS[program]
    python_result = MRAEvaluator(spec.plan(graph), backend="python").run()
    other_result = MRAEvaluator(spec.plan(graph), backend=backend).run()
    _assert_identical(python_result, other_result, backend, clock=False)


@settings(max_examples=6, deadline=None)
@given(
    backend=st.sampled_from(BACKENDS),
    program=st.sampled_from(("sssp", "pagerank")),
    num_vertices=st.integers(min_value=8, max_value=60),
    seed=st.integers(min_value=0, max_value=2**16),
    workers=st.integers(min_value=1, max_value=6),
)
def test_property_random_graphs_distributed(program, num_vertices, seed, workers, backend):
    graph = rmat(num_vertices, num_vertices * 4, seed=seed, name="hyp-dist")
    spec = PROGRAMS[program]
    cluster = ClusterConfig(num_workers=workers)
    python_result = SyncEngine(spec.plan(graph), cluster, backend="python").run()
    other_result = SyncEngine(spec.plan(graph), cluster, backend=backend).run()
    _assert_identical(python_result, other_result, backend)


@settings(max_examples=6, deadline=None)
@given(
    backend=st.sampled_from(BACKENDS),
    program=st.sampled_from(("sssp", "cc")),
    num_vertices=st.integers(min_value=8, max_value=60),
    seed=st.integers(min_value=0, max_value=2**16),
    width=st.floats(min_value=0.5, max_value=40.0),
)
def test_property_delta_stepping_buckets(program, num_vertices, seed, width, backend):
    """Bucketed takes agree with the reference for arbitrary widths."""
    graph = rmat(num_vertices, num_vertices * 3, seed=seed, name="hyp-bucket")
    spec = PROGRAMS[program]
    cluster = ClusterConfig(num_workers=3)
    python_result = SyncEngine(
        spec.plan(graph), cluster, delta_stepping=True, delta_width=width,
        backend="python",
    ).run()
    other_result = SyncEngine(
        spec.plan(graph), cluster, delta_stepping=True, delta_width=width,
        backend=backend,
    ).run()
    _assert_identical(python_result, other_result, backend)
