"""The static analyzer: diagnostics, passes, pre-screen and certificates."""

import json

import pytest

from repro.aggregates import BUILTIN_AGGREGATES
from repro.analysis import (
    CODES,
    AnalysisReport,
    AsyncIneligibleError,
    Severity,
    analyze_source,
    build_graph,
    certify_async,
    communication_shape,
    error,
    estimate_plan_communication,
    match_pattern,
    prescreen,
    reachable_from,
    recursive_components,
    require_async_certified,
    strata,
    strongly_connected_components,
    warning,
)
from repro.checker import check_source
from repro.datalog import analyze, parse_program
from repro.distributed.chaos_harness import default_graph
from repro.expr.terms import Add, Call, Const, Div, Mul, Neg, Var
from repro.programs.registry import PROGRAMS

SSSP = """
d(X, v) :- X = 0, v = 0.
d(Y, min[dy]) :- d(X, dx), edge(X, Y, w), dy = dx + w.
"""

PAGERANK = """
rank(X, v) :- vertex(X), v = 0.15.
rank(Y, sum[r1]) :- rank(X, r), edge(X, Y), deg(X, n), r1 = 0.85 * r / n,
    {sum[delta] < 0.001}.
"""


def report_for(source, name="program"):
    return analyze_source(source, name=name)


def codes_of(report):
    return [d.code for d in report.diagnostics]


class TestDiagnostics:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            error("RA999", "no such code")

    def test_render_includes_code_and_span(self):
        d = error("RA104", "non-linear recursion", line=3, column=7)
        assert "RA104" in d.render()
        assert ":3:7" in d.render()

    def test_report_sorts_errors_first(self):
        report = AnalysisReport(program="p")
        report.add(warning("RA204", "later"))
        report.add(error("RA104", "first"))
        report.finish()
        assert [d.code for d in report.diagnostics] == ["RA104", "RA204"]

    def test_exit_codes(self):
        clean = AnalysisReport(program="p").finish()
        assert clean.exit_code() == 0
        warned = AnalysisReport(program="p")
        warned.add(warning("RA310", "not certified"))
        warned.finish()
        assert warned.exit_code() == 0
        assert warned.exit_code(gate="async") == 1
        failed = AnalysisReport(program="p")
        failed.add(error("RA104", "boom"))
        failed.finish()
        assert failed.exit_code() == 1

    def test_code_table_is_stable(self):
        for code, title in CODES.items():
            assert code.startswith("RA")
            assert title
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank


class TestDependencyGraph:
    def test_edges_and_edb(self):
        graph = build_graph(parse_program(SSSP, name="sssp"))
        assert graph.edges["d"] == ["d", "edge"]
        assert graph.defined() == ["d"]
        assert "edge" in graph.edb()

    def test_scc_mutual_recursion(self):
        graph = build_graph(
            parse_program("p(X, v) :- q(X, v).\nq(X, v) :- p(X, v), e(X, Y).", name="pq")
        )
        components = strongly_connected_components(graph)
        assert ["p", "q"] in [sorted(c) for c in components]
        assert sorted(recursive_components(graph)[0]) == ["p", "q"]

    def test_self_loop_is_recursive(self):
        graph = build_graph(parse_program(SSSP, name="sssp"))
        assert recursive_components(graph) == [["d"]]

    def test_strata_bottom_up(self):
        graph = build_graph(parse_program(SSSP, name="sssp"))
        layers = strata(graph)
        assert layers[-1] == ["d"]
        flat = [p for layer in layers for p in layer]
        assert flat.index("edge") < flat.index("d")

    def test_reachable_from(self):
        graph = build_graph(parse_program(SSSP, name="sssp"))
        assert reachable_from(graph, "d") == {"d", "edge"}


class TestStructure:
    def test_clean_program(self):
        report = report_for(SSSP)
        assert report.ok

    def test_no_recursive_rule(self):
        report = report_for("p(X, v) :- e(X, v).")
        assert "RA101" in codes_of(report)

    def test_mutual_recursion_with_aggregate(self):
        report = report_for("p(X, min[v]) :- q(X, v).\nq(X, v) :- p(X, v), e(X, _).")
        assert "RA102" in codes_of(report)
        assert "RA110" in codes_of(report)

    def test_nonlinear_recursion(self):
        report = report_for(
            "p(X, v) :- X = 0, v = 0.\n"
            "p(Y, min[v1]) :- p(X, v), p(Z, u), e(X, Z, Y), v1 = v + u."
        )
        assert "RA104" in codes_of(report)

    def test_no_aggregate_head(self):
        report = report_for("p(X, v) :- X = 0, v = 0.\np(Y, v) :- p(X, v), e(X, Y).")
        assert "RA105" in codes_of(report)

    def test_aggregate_not_last(self):
        report = report_for(
            "p(X, v) :- X = 0, v = 0.\np(min[v1], Y) :- p(X, v), e(X, Y), v1 = v."
        )
        assert "RA106" in codes_of(report)
        # not double-reported as a head-key problem too
        assert "RA108" not in codes_of(report)


class TestLints:
    def test_unbound_head_variable(self):
        report = report_for("best(X, cost) :- start(X, c).\nbest(Y, min[d]) :- best(X, d), e(X, Y).")
        assert "RA201" in codes_of(report)
        assert not report.ok

    def test_equality_chain_binds(self):
        # v bound through a chain of definitions rooted in an atom
        report = report_for(
            "p(X, v) :- start(X, a), b = a + 1, v = b * 2.\n"
            "p(Y, min[v1]) :- p(X, v), e(X, Y), v1 = v."
        )
        assert "RA201" not in codes_of(report)

    def test_unused_predicate_warns(self):
        report = report_for(SSSP + "orphan(X, v) :- island(X, v).\n")
        assert "RA202" in codes_of(report)

    def test_duplicate_rule_warns(self):
        report = report_for(SSSP + "d(Y, min[dy]) :- d(X, dx), edge(X, Y, w), dy = dx + w.\n")
        assert "RA203" in codes_of(report)

    def test_singleton_variable_warns(self):
        report = report_for(
            "p(X, v) :- start(X, v), extra(X, unused).\n"
            "p(Y, min[v1]) :- p(X, v), e(X, Y), v1 = v."
        )
        assert "RA204" in codes_of(report)

    def test_termination_delta_exempt_from_singleton(self):
        report = report_for(PAGERANK, name="pagerank")
        assert "RA204" not in codes_of(report)
        assert report.ok


class TestPreScreenPatterns:
    MIN = BUILTIN_AGGREGATES["min"]
    SUM = BUILTIN_AGGREGATES["sum"]

    def test_identity(self):
        assert match_pattern(self.MIN, Var("x"), "x", {}) == "identity"
        assert match_pattern(self.SUM, Var("x"), "x", {}) == "identity"

    def test_shift_selective_only(self):
        shift = Add(Var("x"), Var("w"))
        assert match_pattern(self.MIN, shift, "x", {}) == "shift"
        assert match_pattern(self.SUM, shift, "x", {}) is None

    def test_scale_nonneg_needs_sign(self):
        scaled = Mul(Const(0.5), Var("x"))
        assert match_pattern(self.MIN, scaled, "x", {}) == "scale-nonneg"
        negated = Mul(Const(-0.5), Var("x"))
        assert match_pattern(self.MIN, negated, "x", {}) is None
        unknown = Mul(Var("w"), Var("x"))  # w's sign unknown without assume
        assert match_pattern(self.MIN, unknown, "x", {}) is None

    def test_linear_homogeneous_additive(self):
        fprime = Div(Mul(Const(0.85), Var("x")), Var("n"))
        assert match_pattern(self.SUM, fprime, "x", {}) == "linear-homogeneous"
        assert match_pattern(self.SUM, Neg(Var("x")), "x", {}) == "linear-homogeneous"

    def test_calls_are_rejected(self):
        fprime = Mul(Call("relu", (Var("w"),)), Var("x"))
        assert match_pattern(self.SUM, fprime, "x", {}) is None

    def test_shift_plus_var_twice_rejected(self):
        assert match_pattern(self.MIN, Add(Var("x"), Var("x")), "x", {}) is None

    def test_prescreen_verdicts(self):
        assert prescreen(analyze(parse_program(SSSP, name="sssp"))).pattern == "shift"
        assert prescreen(PROGRAMS["cc"].analysis()).pattern == "identity"
        assert prescreen(PROGRAMS["pagerank"].analysis()).pattern == "linear-homogeneous"
        assert prescreen(PROGRAMS["viterbi"].analysis()).pattern == "scale-nonneg"
        assert not prescreen(PROGRAMS["gcn"].analysis()).eligible


class TestPreScreenSoundness:
    """The load-bearing invariant: prescreen-eligible implies checker-provable.

    An unsound pre-screen would let the async engines run a program the
    checker refutes, so every registry program is regression-tested.
    """

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_never_whitelists_what_the_checker_refutes(self, name):
        spec = PROGRAMS[name]
        verdict = prescreen(spec.analysis())
        if verdict.eligible:
            assert check_source(spec.source, name=name).mra_satisfiable


class TestAsyncCertification:
    def test_certified_via_prescreen(self):
        cert = certify_async(PROGRAMS["sssp"].analysis())
        assert cert.eligible
        assert cert.method == "prescreen(shift)"
        assert cert.diagnostic.code == "RA311"

    def test_refused_with_diagnostic(self):
        cert = certify_async(PROGRAMS["gcn"].analysis())
        assert not cert.eligible
        assert cert.diagnostic.code == "RA310"
        assert "synchronous engine" in cert.diagnostic.hint

    def test_require_raises(self):
        with pytest.raises(AsyncIneligibleError) as excinfo:
            require_async_certified(PROGRAMS["commnet"].analysis())
        assert excinfo.value.certificate.diagnostic.code == "RA310"

    def test_async_engine_refuses_uncertified_plan(self):
        from repro.distributed import AsyncEngine, ClusterConfig

        plan = PROGRAMS["gcn"].plan(default_graph("gcn"))
        with pytest.raises(AsyncIneligibleError) as excinfo:
            AsyncEngine(plan, ClusterConfig(num_workers=4))
        assert excinfo.value.certificate.diagnostic.code == "RA310"

    def test_async_engine_carries_certificate(self):
        from repro.distributed import AsyncEngine, ClusterConfig

        plan = PROGRAMS["sssp"].plan(default_graph("sssp"))
        engine = AsyncEngine(plan, ClusterConfig(num_workers=4))
        assert engine.async_certificate.eligible


class TestCheckerFastPath:
    def test_prescreen_fast_path_method(self):
        report = check_source(PROGRAMS["sssp"].source, name="sssp")
        assert report.mra_satisfiable
        assert report.property2.method == "structural:prescreen(shift)"

    def test_residue_still_goes_through_prover(self):
        report = check_source(PROGRAMS["gcn"].source, name="gcn")
        assert not report.mra_satisfiable


class TestCommunication:
    def test_cross_worker_shape(self):
        shapes = communication_shape(analyze(parse_program(SSSP, name="sssp")))
        assert len(shapes) == 1
        assert not shapes[0].co_partitionable
        assert shapes[0].source_keys == ("X",)
        assert shapes[0].dest_keys == ("Y",)

    def test_co_partitionable_shape(self):
        source = (
            "p(X, v) :- start(X, v).\n"
            "p(X, sum[v1]) :- p(X, v), f(X, w), v1 = v * w, {sum[d] < 0.001}.\n"
        )
        shapes = communication_shape(analyze(parse_program(source, name="local")))
        assert shapes[0].co_partitionable

    def test_exact_plan_census(self):
        plan = PROGRAMS["sssp"].plan(default_graph("sssp"))
        estimate = estimate_plan_communication(plan, num_workers=4)
        assert estimate.total_edges == sum(len(v) for v in plan.out_edges.values())
        assert 0 < estimate.cross_edges <= estimate.total_edges
        assert estimate.cross_fraction == estimate.cross_edges / estimate.total_edges
        assert sum(estimate.per_worker_out) == estimate.cross_edges

    def test_comm_metrics_recorded(self):
        from repro.distributed import ClusterConfig, SyncEngine
        from repro.obs import Observability

        plan = PROGRAMS["sssp"].plan(default_graph("sssp"))
        obs = Observability(enabled=True)
        SyncEngine(plan, ClusterConfig(num_workers=4), obs=obs).run()
        gauges = obs.metrics.snapshot()["gauges"]
        assert "comm_edges_total" in gauges
        assert "comm_cross_fraction" in gauges
        assert "comm_out_messages{worker=0}" in gauges


class TestPipelineReports:
    def test_registry_programs_lint_clean(self):
        for name, spec in PROGRAMS.items():
            report = analyze_source(spec.source, name=name)
            assert report.ok, f"{name}: {codes_of(report)}"
            # RA310 (async-ineligible) and RA342 (⊗ outside the certified
            # pattern table) flag the same two neural programs by design
            assert not [d for d in report.diagnostics if d.severity is Severity.WARNING
                        and d.code not in ("RA310", "RA342")], name

    def test_syntax_error_is_a_diagnostic(self):
        report = report_for("p(X, v) :- ???")
        assert codes_of(report)[0] in {"RA001", "RA002"}
        assert not report.ok

    def test_theorem_sections_populated(self):
        report = report_for(SSSP, name="sssp")
        assert report.theorem1["eligible"]
        assert report.theorem3["eligible"]
        assert report.theorem3["method"] == "prescreen(shift)"

    def test_json_roundtrip(self):
        payload = json.loads(report_for(SSSP, name="sssp").render_json())
        assert payload["program"] == "sssp"
        assert payload["theorem3"]["eligible"]
