"""Unit coverage for the sparse-frontier kernel's internal structures.

The equivalence suite (``test_kernel_equivalence``) proves end-to-end
bit-exactness across engines; this module pins the mechanisms that
exactness rests on, one by one: columnar edge storage on the compiled
plan, the fast CSR packer producing *content-identical* structures to
the reference per-edge walk, the fused initial-delta path (values and
dict insertion order), batch-push order equivalence against repeated
scalar pushes, and the delta-stepping bucket invariants.
"""

import pytest

from repro.distributed.chaos_harness import default_graph
from repro.engine.mra import compute_initial_delta
from repro.engine.plan import EdgeColumns
from repro.programs import PROGRAMS
from repro.runtime import HAVE_NUMPY, get_kernel

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy backend not installed"
)

ALL_PROGRAMS = sorted(PROGRAMS)


def plan_for(program: str, seed: int = 7):
    return PROGRAMS[program].plan(default_graph(program, seed=seed))


def sparse_plan_for(program: str, seed: int = 7):
    """Compile a plan, skipping programs the sparse backend refuses."""
    plan = plan_for(program, seed=seed)
    if not get_kernel("sparse").supports_plan(plan):
        pytest.skip(f"sparse backend refuses {program}'s semiring carrier")
    return plan


class TestEdgeColumns:
    """Columnar edge storage built during plan compilation."""

    @pytest.mark.parametrize("program", ALL_PROGRAMS)
    def test_every_compiled_plan_carries_columns(self, program):
        plan = plan_for(program)
        assert plan.edge_columns is not None
        assert len(plan.edge_columns) == len(plan.fprime_fns)
        total = sum(len(columns) for columns in plan.edge_columns)
        assert total == plan.num_edges

    def test_columns_match_out_edges_content(self):
        plan = plan_for("sssp")
        (columns,) = plan.edge_columns
        walked = []
        for src in sorted(plan.out_edges):
            for dst, params, _fn in plan.out_edges[src]:
                walked.append((src, dst, params))
        stored = sorted(
            (
                columns.srcs[j],
                columns.dsts[j],
                tuple(col[j] for col in columns.param_cols),
            )
            for j in range(len(columns))
        )
        assert stored == sorted(walked)

    def test_int_keys_use_typed_storage(self):
        from array import array

        plan = plan_for("sssp")
        (columns,) = plan.edge_columns
        assert isinstance(columns.srcs, array)
        assert isinstance(columns.dsts, array)
        for col in columns.param_cols:
            assert isinstance(col, array)

    def test_tuple_keys_demote_to_lists(self):
        # apsp keys are (source, vertex) pairs: array('q') cannot hold
        # them, so the key columns demote while parameters stay typed
        plan = plan_for("apsp")
        (columns,) = plan.edge_columns
        assert isinstance(columns.srcs, list)
        assert isinstance(columns.dsts, list)

    def test_demotion_preserves_earlier_values(self):
        columns = EdgeColumns(fn=lambda x, w: x + w, width=1)
        columns.append(0, 1, (2.5,))
        columns.append((7, 8), 2, (3.5,))
        assert list(columns.srcs) == [0, (7, 8)]
        assert list(columns.dsts) == [1, 2]
        assert list(columns.param_cols[0]) == [2.5, 3.5]
        assert len(columns) == 2


class TestFastCSR:
    """The fast packer's CSR == the reference per-edge walk's, exactly."""

    @pytest.mark.parametrize("program", ALL_PROGRAMS)
    def test_content_identical_to_reference(self, program):
        import numpy as np

        from repro.runtime.numpy_kernel import _PlanCSR, plan_key_order
        from repro.runtime.sparse_kernel import fast_plan_csr

        fast = fast_plan_csr(sparse_plan_for(program))
        reference_plan = plan_for(program)
        plan_key_order(reference_plan)
        reference = _PlanCSR(reference_plan)

        assert fast.n == reference.n
        assert fast.keys_sorted == reference.keys_sorted
        assert np.array_equal(fast.indptr, reference.indptr)
        assert np.array_equal(fast.edst, reference.edst)
        assert np.array_equal(fast.efn, reference.efn)
        assert np.array_equal(fast.erow, reference.erow)
        assert len(fast.groups) == len(reference.groups)
        for fast_group, ref_group in zip(fast.groups, reference.groups):
            assert fast_group.vector_ok == ref_group.vector_ok
            assert len(fast_group.raw_params) == len(ref_group.raw_params)
            for j in range(len(ref_group.raw_params)):
                assert tuple(fast_group.raw_params[j]) == tuple(
                    ref_group.raw_params[j]
                )
            if ref_group.cols is not None:
                for fast_col, ref_col in zip(
                    fast_group.cols, ref_group.cols
                ):
                    assert np.array_equal(fast_col, ref_col)

    def test_cached_on_the_plan_and_shared(self):
        from repro.runtime.sparse_kernel import fast_plan_csr
        from repro.runtime.numpy_kernel import plan_csr

        plan = plan_for("sssp")
        csr = fast_plan_csr(plan)
        assert fast_plan_csr(plan) is csr
        # the numpy kernel's packer reuses the same cache slot
        assert plan_csr(plan) is csr

    def test_hand_built_plans_fall_back(self):
        from repro.runtime.sparse_kernel import fast_plan_csr

        plan = plan_for("sssp")
        object.__setattr__(plan, "edge_columns", None)
        csr = fast_plan_csr(plan)
        assert csr.n == len(plan._kernel_keys_sorted)


class TestInitialDelta:
    """The fused ΔX¹ equals the section-3.3 reference, order included."""

    @pytest.mark.parametrize("program", ALL_PROGRAMS)
    def test_values_and_insertion_order(self, program):
        plan = sparse_plan_for(program)
        sparse_cls = get_kernel("sparse")
        fused = sparse_cls.initial_delta(plan)
        reference = compute_initial_delta(plan)
        assert fused == reference
        # dict insertion order is observable state downstream (push
        # order seeds arrival sequences); it must match too
        assert list(fused) == list(reference)

    @pytest.mark.parametrize("seed", (1, 2, 3, 11))
    def test_order_stable_across_seeds(self, seed):
        plan = plan_for("cc", seed=seed)
        fused = get_kernel("sparse").initial_delta(plan)
        reference = compute_initial_delta(plan)
        assert list(fused.items()) == list(reference.items())


class TestPushMany:
    """Batch seeding == repeated scalar pushes, bit for bit."""

    def _pair_batch(self, plan, count):
        keys = sorted(plan.initial)
        batch = []
        for j in range(count):
            key = keys[j % len(keys)]
            batch.append((key, float(5 + (j * 7) % 13)))
        return batch

    @pytest.mark.parametrize("count", (3, 40))
    def test_matches_scalar_pushes(self, count):
        plan = plan_for("sssp")
        sparse_cls = get_kernel("sparse")
        batch = self._pair_batch(plan, count)

        batched = sparse_cls.from_plan(plan)
        batched.push_many(batch)
        scalar = sparse_cls.from_plan(plan)
        for key, value in batch:
            scalar.push(key, value)

        assert batched.intermediate == scalar.intermediate
        assert list(batched.intermediate) == list(scalar.intermediate)
        assert batched.pending_count() == scalar.pending_count()
        assert (
            batched.counters.snapshot() == scalar.counters.snapshot()
        )

    def test_matches_python_backend(self):
        plan = plan_for("sssp")
        batch = self._pair_batch(plan, 40)
        kernels = {}
        for backend in ("python", "sparse"):
            kernel = get_kernel(backend).from_plan(plan)
            kernel.push_many(batch)
            kernels[backend] = kernel
        assert (
            kernels["sparse"].intermediate
            == kernels["python"].intermediate
        )
        assert list(kernels["sparse"].intermediate) == list(
            kernels["python"].intermediate
        )

    def test_batched_then_stepped_reaches_reference_fixpoint(self):
        from repro.engine import MRAEvaluator

        plan = plan_for("sssp")
        kernel = get_kernel("sparse").from_plan(plan)
        kernel.push_many(compute_initial_delta(plan).items())
        for _ in range(10_000):
            if not kernel.step().changed and not kernel.has_pending():
                break
        reference = MRAEvaluator(plan_for("sssp"), backend="python").run()
        assert kernel.result() == reference.values


class TestBuckets:
    """Delta-stepping buckets agree with the scan-everything reference."""

    @pytest.mark.parametrize("width", (0.5, 2.0, 7.0))
    @pytest.mark.parametrize("program", ("sssp", "cc"))
    def test_bucketed_drain_matches_python(self, program, width):
        plan = plan_for(program)
        kernels = {}
        for backend in ("python", "sparse"):
            kernel = get_kernel(backend).from_plan(plan)
            kernel.enable_delta_stepping(width)
            kernel.push_many(compute_initial_delta(plan).items())
            kernels[backend] = kernel

        rounds = 0
        while kernels["python"].has_pending():
            assert kernels["sparse"].has_pending()
            floor = kernels["python"].pending_min()
            assert kernels["sparse"].pending_min() == floor
            threshold = floor + width
            taken = {
                backend: kernel.take_pending_below(threshold)
                for backend, kernel in kernels.items()
            }
            assert taken["sparse"] == taken["python"]
            assert list(taken["sparse"]) == list(taken["python"])
            for backend, kernel in kernels.items():
                result = kernel.apply_batch(taken[backend])
                kernel.push_many(result.out_deltas.items())
            rounds += 1
            assert rounds < 10_000
        assert not kernels["sparse"].has_pending()
        assert kernels["sparse"].result() == kernels["python"].result()

    def test_reenabling_buckets_reindexes_pending(self):
        plan = plan_for("sssp")
        kernel = get_kernel("sparse").from_plan(plan)
        kernel.push_many(compute_initial_delta(plan).items())
        before_min = kernel.pending_min()
        kernel.enable_delta_stepping(1.5)
        assert kernel.pending_min() == before_min
