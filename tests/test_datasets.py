"""The six Table-2 dataset stand-ins and their structural regimes."""

import pytest

from repro.graphs import DATASETS, compute_stats, dataset_names, load_dataset


class TestRegistry:
    def test_six_datasets_in_paper_order(self):
        assert dataset_names() == ["flickr", "livej", "orkut", "web", "wiki", "arabic"]

    def test_specs_record_paper_sizes(self):
        assert DATASETS["arabic"].paper_vertices == 22_744_080
        assert DATASETS["arabic"].paper_edges == 639_999_458

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("imagenet")

    def test_cached_instances(self):
        assert load_dataset("flickr") is load_dataset("flickr")

    def test_scaling(self):
        full = load_dataset("flickr", 1.0)
        half = load_dataset("flickr", 0.5)
        assert half.num_vertices < full.num_vertices


class TestStructuralRegimes:
    """The properties the experiments depend on (see DESIGN.md)."""

    @pytest.mark.parametrize("name", dataset_names())
    def test_fully_reachable_from_zero(self, name):
        stats = compute_stats(load_dataset(name))
        assert stats.reachable_from_0 == stats.num_vertices

    def test_arabic_has_the_largest_diameter(self):
        eccentricities = {
            name: compute_stats(load_dataset(name)).eccentricity_from_0
            for name in dataset_names()
        }
        assert max(eccentricities, key=eccentricities.get) == "arabic"
        assert eccentricities["arabic"] >= 3 * eccentricities["web"]

    def test_social_graphs_are_skewed(self):
        for name in ("flickr", "livej", "orkut", "wiki"):
            assert compute_stats(load_dataset(name)).degree_skew > 5

    def test_web_and_arabic_are_flat(self):
        for name in ("web", "arabic"):
            assert compute_stats(load_dataset(name)).degree_skew < 3

    def test_relative_density_ordering(self):
        degrees = {
            name: compute_stats(load_dataset(name)).avg_degree
            for name in dataset_names()
        }
        # Orkut and Wiki-link are the dense ones in Table 2
        assert degrees["orkut"] > degrees["flickr"]
        assert degrees["wiki"] > degrees["livej"]

    @pytest.mark.parametrize("name", dataset_names())
    def test_deterministic(self, name):
        load_dataset.cache_clear()
        first = load_dataset(name)
        load_dataset.cache_clear()
        second = load_dataset(name)
        assert first.edges == second.edges
