"""SMT-LIB 2 emission (the paper's Figure 4)."""

import re

import pytest

from repro.checker import emit_property2_script
from repro.checker.smtlib import expr_to_sexpr
from repro.expr import Call, Interval, const, var
from repro.programs import PROGRAMS


def script_for(name: str) -> str:
    analysis = PROGRAMS[name].analysis()
    return emit_property2_script(
        analysis.aggregate,
        analysis.fprime,
        analysis.recursion_var,
        analysis.domains,
        program_name=name,
    )


class TestFigure4Structure:
    """The emitted PageRank script must match the paper's Figure 4."""

    def test_pagerank_declares_parameter(self):
        script = script_for("pagerank")
        assert "(declare-const d Real)" in script

    def test_pagerank_asserts_domain(self):
        script = script_for("pagerank")
        assert "(assert (> d 0))" in script

    def test_pagerank_defines_g_as_sum(self):
        script = script_for("pagerank")
        assert "(define-fun g ((a Real) (b Real)) Real (+ a b))" in script

    def test_pagerank_f_body(self):
        script = script_for("pagerank")
        match = re.search(r"\(define-fun f \(\(a Real\)\) Real (.+)\)", script)
        assert match is not None
        assert "17.0 20.0" in match.group(1)  # 0.85 as an exact rational

    def test_double_negated_forall(self):
        script = script_for("pagerank")
        assert "(assert (not (forall ((x1 Real) (y1 Real) (x2 Real) (y2 Real))" in script
        assert "(g (f (g x1 y1)) (f (g x2 y2)))" in script
        assert "(g (g (g (f x1) (f y1)) (f x2)) (f y2))" in script

    def test_ends_with_check_sat(self):
        assert script_for("pagerank").rstrip().endswith("(check-sat)")


class TestOperatorBodies:
    def test_min_uses_ite(self):
        assert "(ite (<= a b) a b)" in script_for("sssp")

    def test_relu_defined_for_gcn(self):
        script = script_for("gcn")
        assert "(define-fun relu ((v Real)) Real (ite (> v 0) v 0))" in script

    def test_tanh_declared_uninterpreted(self):
        script = script_for("commnet")
        assert "(declare-fun tanh (Real) Real)" in script


class TestSexprRendering:
    def test_negative_constant(self):
        assert expr_to_sexpr(const(-3)) == "(- 3.0)"

    def test_nested_arithmetic(self):
        rendered = expr_to_sexpr((var("a") + 1) * var("b"))
        assert rendered == "(* (+ a 1.0) b)"

    def test_call(self):
        assert expr_to_sexpr(Call("relu", (var("x"),))) == "(relu x)"

    def test_division(self):
        assert expr_to_sexpr(var("x") / var("d")) == "(/ x d)"


class TestAllProgramsEmit:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_script_is_well_formed(self, name):
        script = script_for(name)
        assert script.count("(") == script.count(")")
        assert "(check-sat)" in script
        assert "(define-fun g " in script
        assert "(define-fun f " in script


class TestDomainsRendering:
    def test_bounded_domain(self):
        script = emit_property2_script(
            PROGRAMS["sssp"].analysis().aggregate,
            var("x") * var("w"),
            "x",
            {"w": Interval(0.0, 1.0)},
        )
        assert "(assert (>= w 0))" in script
        assert "(assert (<= w 1))" in script
