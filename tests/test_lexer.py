"""Tokenizer behaviour, including the tricky number-vs-period cases."""

from fractions import Fraction

import pytest

from repro.datalog import LexError, tokenize
from repro.datalog.lexer import EOF, IDENT, NUMBER, PUNCT, STRING, number_value


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != EOF]


class TestBasicTokens:
    def test_identifiers_and_punctuation(self):
        tokens = kinds("sssp(X, d)")
        assert tokens == [
            (IDENT, "sssp"),
            (PUNCT, "("),
            (IDENT, "X"),
            (PUNCT, ","),
            (IDENT, "d"),
            (PUNCT, ")"),
        ]

    def test_rule_arrow(self):
        assert (PUNCT, ":-") in kinds("a(X) :- b(X).")

    def test_comparison_operators(self):
        tokens = kinds("a <= b >= c != d < e > f = g")
        punct = [v for k, v in tokens if k == PUNCT]
        assert punct == ["<=", ">=", "!=", "<", ">", "="]

    def test_string_literal(self):
        assert (STRING, "label_a") in kinds('p(X, "label_a")')

    def test_eof_always_present(self):
        assert tokenize("")[-1].kind == EOF


class TestNumbersAndPeriods:
    def test_decimal_number_keeps_dot(self):
        tokens = kinds("r = 0.85")
        assert (NUMBER, "0.85") in tokens

    def test_rule_final_period_after_integer(self):
        tokens = kinds("d = 0.")
        assert tokens[-1] == (PUNCT, ".")
        assert (NUMBER, "0") in tokens

    def test_decimal_then_period(self):
        tokens = kinds("d = 0.5.")
        assert (NUMBER, "0.5") in tokens
        assert tokens[-1] == (PUNCT, ".")

    def test_number_value_exact(self):
        token = tokenize("0.85")[0]
        assert number_value(token) == Fraction(17, 20)

    def test_number_value_integer(self):
        token = tokenize("42")[0]
        assert number_value(token) == Fraction(42)


class TestCommentsAndLabels:
    def test_percent_comment(self):
        assert kinds("% a comment\nfoo(X)")[0] == (IDENT, "foo")

    def test_double_slash_comment(self):
        assert kinds("// c\nfoo(X)")[0] == (IDENT, "foo")

    def test_hash_comment(self):
        assert kinds("# c\nfoo(X)")[0] == (IDENT, "foo")

    def test_rule_labels_stripped(self):
        tokens = kinds("r1. sssp(X, d) :- X = 1, d = 0.")
        assert tokens[0] == (IDENT, "sssp")

    def test_label_mid_source(self):
        source = "a(X) :- b(X).\nr2. c(X) :- d(X)."
        names = [v for k, v in kinds(source) if k == IDENT and v.islower()]
        assert names == ["a", "b", "c", "d"]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as exc:
            tokenize("a(X) @ b(Y)")
        assert exc.value.line == 1

    def test_error_reports_line(self):
        with pytest.raises(LexError) as exc:
            tokenize("a(X).\n$")
        assert exc.value.line == 2
