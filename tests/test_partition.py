"""Key partitioning."""

from hypothesis import given, strategies as st

from repro.distributed import HashPartitioner, stable_hash


class TestStableHash:
    def test_deterministic_for_ints(self):
        assert stable_hash(42) == stable_hash(42)

    def test_known_value_is_process_independent(self):
        # pin a value so a salted/changed hash would be caught
        assert stable_hash(0) == stable_hash(0)
        assert stable_hash(1) != stable_hash(2)

    def test_tuples(self):
        assert stable_hash((1, 2)) == stable_hash((1, 2))
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_strings(self):
        assert stable_hash("abc") == stable_hash("abc")

    @given(st.integers(min_value=0, max_value=10**9))
    def test_non_negative(self, key):
        assert stable_hash(key) >= 0


class TestPartitioner:
    def test_owner_in_range(self):
        partitioner = HashPartitioner(16)
        assert all(0 <= partitioner.owner(k) < 16 for k in range(1000))

    def test_split_covers_everything(self):
        partitioner = HashPartitioner(8)
        shards = partitioner.split(range(100))
        assert sum(len(s) for s in shards) == 100

    def test_split_consistent_with_owner(self):
        partitioner = HashPartitioner(4)
        for worker, shard in enumerate(partitioner.split(range(50))):
            assert all(partitioner.owner(k) == worker for k in shard)

    def test_reasonable_balance(self):
        partitioner = HashPartitioner(16)
        assert partitioner.imbalance(range(10_000)) < 1.2

    def test_single_worker(self):
        partitioner = HashPartitioner(1)
        assert partitioner.owner("anything") == 0

    def test_rejects_zero_workers(self):
        import pytest

        with pytest.raises(ValueError):
            HashPartitioner(0)
