"""Result comparison semantics."""

import pytest

from repro.aggregates import MIN, SUM
from repro.engine import compare_results, tolerance_for


class TestTolerance:
    def test_idempotent_exact(self):
        assert tolerance_for(MIN, {1: 5}) == 0.0

    def test_additive_scale_aware(self):
        assert tolerance_for(SUM, {1: 1.0}) == pytest.approx(5e-3)
        assert tolerance_for(SUM, {1: 1000.0}) == pytest.approx(5.0)

    def test_empty_reference(self):
        assert tolerance_for(SUM, {}) == pytest.approx(5e-3)


class TestCompare:
    def test_exact_match(self):
        comparison = compare_results({1: 2, 2: 3}, {1: 2, 2: 3}, MIN)
        assert comparison.ok
        assert comparison.compared_keys == 2
        assert "ok" in comparison.summary()

    def test_exact_mismatch(self):
        comparison = compare_results({1: 2}, {1: 3}, MIN)
        assert not comparison.ok
        assert comparison.worst().key == 1

    def test_tolerant_match(self):
        comparison = compare_results({1: 1.0}, {1: 1.004}, SUM)
        assert comparison.ok

    def test_tolerant_mismatch(self):
        comparison = compare_results({1: 1.0}, {1: 1.02}, SUM)
        assert not comparison.ok

    def test_missing_negligible_key_passes(self):
        comparison = compare_results({1: 1.0, 2: 1e-6}, {1: 1.0}, SUM)
        assert comparison.ok

    def test_missing_significant_key_fails(self):
        comparison = compare_results({1: 1.0, 2: 0.9}, {1: 1.0}, SUM)
        assert not comparison.ok
        assert comparison.worst().got is None

    def test_extra_keys_ignored(self):
        comparison = compare_results({1: 1.0}, {1: 1.0, 99: 7.0}, SUM)
        assert comparison.ok

    def test_explicit_tolerance_override(self):
        comparison = compare_results({1: 1.0}, {1: 1.5}, SUM, tolerance=1.0)
        assert comparison.ok

    def test_summary_reports_counts(self):
        comparison = compare_results({1: 1.0, 2: 2.0}, {1: 9.0, 2: 2.0}, SUM)
        assert "1/2 keys differ" in comparison.summary()
