"""Distributed engines: correctness (Theorem 3), timing model, determinism."""


import pytest

from repro.distributed import (
    AAPEngine,
    AsyncEngine,
    ClusterConfig,
    SyncEngine,
    UnifiedEngine,
)
from repro.distributed.buffers import BufferPolicy
from repro.engine import MRAEvaluator
from repro.graphs import rmat
from repro.programs import PROGRAMS


@pytest.fixture(scope="module")
def graph():
    return rmat(80, 400, seed=21, name="dist-graph")


@pytest.fixture(scope="module")
def cluster():
    return ClusterConfig(num_workers=8)


def reference_values(program: str, graph):
    return MRAEvaluator(PROGRAMS[program].plan(graph)).run().values


def assert_same_values(values: dict, reference: dict, exact: bool):
    assert set(values) == set(reference)
    for key, expected in reference.items():
        if exact:
            assert values[key] == expected, key
        else:
            assert values[key] == pytest.approx(expected, abs=2e-3), key


ENGINE_BUILDERS = {
    "sync": lambda plan, cluster: SyncEngine(plan, cluster),
    "naive": lambda plan, cluster: SyncEngine(plan, cluster, mode="naive"),
    "async": lambda plan, cluster: AsyncEngine(plan, cluster),
    "async-eager": lambda plan, cluster: AsyncEngine(
        plan, cluster, batch_size=16,
        buffer_policy=BufferPolicy(initial_beta=8, adaptive=False),
    ),
    "unified": lambda plan, cluster: UnifiedEngine(plan, cluster),
    "aap": lambda plan, cluster: AAPEngine(plan, cluster),
}


class TestCorrectness:
    """All execution modes reach the same fixpoint (Theorem 3)."""

    @pytest.mark.parametrize("engine_name", sorted(ENGINE_BUILDERS))
    @pytest.mark.parametrize("program", ["sssp", "cc"])
    def test_selective_programs_exact(self, engine_name, program, graph, cluster):
        plan = PROGRAMS[program].plan(graph)
        result = ENGINE_BUILDERS[engine_name](plan, cluster).run()
        assert_same_values(result.values, reference_values(program, graph), exact=True)

    @pytest.mark.parametrize("engine_name", sorted(ENGINE_BUILDERS))
    @pytest.mark.parametrize("program", ["pagerank", "katz"])
    def test_additive_programs_approx(self, engine_name, program, graph, cluster):
        plan = PROGRAMS[program].plan(graph)
        result = ENGINE_BUILDERS[engine_name](plan, cluster).run()
        assert_same_values(result.values, reference_values(program, graph), exact=False)

    def test_single_worker_cluster(self, graph):
        plan = PROGRAMS["sssp"].plan(graph)
        result = SyncEngine(plan, ClusterConfig(num_workers=1)).run()
        assert_same_values(result.values, reference_values("sssp", graph), exact=True)


class TestStopReasons:
    def test_fixpoint_for_min_programs(self, graph, cluster):
        plan = PROGRAMS["sssp"].plan(graph)
        assert SyncEngine(plan, cluster).run().stop_reason == "fixpoint"
        assert AsyncEngine(plan, cluster).run().stop_reason == "fixpoint"

    def test_epsilon_for_limit_programs(self, graph, cluster):
        plan = PROGRAMS["pagerank"].plan(graph)
        assert SyncEngine(plan, cluster).run().stop_reason == "epsilon"
        assert AsyncEngine(plan, cluster).run().stop_reason == "epsilon"


class TestTimingModel:
    def test_simulated_time_positive(self, graph, cluster):
        plan = PROGRAMS["sssp"].plan(graph)
        result = SyncEngine(plan, cluster).run()
        assert result.simulated_seconds > 0

    def test_naive_slower_than_incremental(self, graph, cluster):
        plan = PROGRAMS["pagerank"].plan(graph)
        naive = SyncEngine(plan, cluster, mode="naive").run()
        incremental = SyncEngine(plan, cluster).run()
        assert naive.simulated_seconds > incremental.simulated_seconds

    def test_naive_does_more_work(self, graph, cluster):
        plan = PROGRAMS["sssp"].plan(graph)
        naive = SyncEngine(plan, cluster, mode="naive").run()
        incremental = SyncEngine(plan, cluster).run()
        assert (
            naive.counters.fprime_applications
            > incremental.counters.fprime_applications
        )

    def test_barriers_counted_per_superstep(self, graph, cluster):
        plan = PROGRAMS["sssp"].plan(graph)
        result = SyncEngine(plan, cluster).run()
        assert result.counters.barriers == result.counters.iterations

    def test_async_has_no_barriers(self, graph, cluster):
        plan = PROGRAMS["sssp"].plan(graph)
        result = AsyncEngine(plan, cluster).run()
        assert result.counters.barriers == 0

    def test_messages_counted(self, graph, cluster):
        plan = PROGRAMS["sssp"].plan(graph)
        result = SyncEngine(plan, cluster).run()
        assert result.counters.messages > 0
        assert result.counters.message_tuples >= result.counters.messages

    def test_eager_async_sends_more_messages(self, graph, cluster):
        plan = PROGRAMS["pagerank"].plan(graph)
        eager = ENGINE_BUILDERS["async-eager"](plan, cluster).run()
        batched = UnifiedEngine(plan, cluster).run()
        assert eager.counters.messages > batched.counters.messages


class TestDeterminism:
    @pytest.mark.parametrize("engine_name", ["sync", "async", "unified", "aap"])
    def test_repeat_runs_identical(self, engine_name, graph, cluster):
        plan = PROGRAMS["sssp"].plan(graph)
        first = ENGINE_BUILDERS[engine_name](plan, cluster).run()
        second = ENGINE_BUILDERS[engine_name](plan, cluster).run()
        assert first.values == second.values
        assert first.simulated_seconds == second.simulated_seconds
        assert first.counters.snapshot() == second.counters.snapshot()


class TestDeltaStepping:
    def test_correct_results(self, graph, cluster):
        plan = PROGRAMS["sssp"].plan(graph)
        result = SyncEngine(plan, cluster, delta_stepping=True).run()
        assert_same_values(result.values, reference_values("sssp", graph), exact=True)

    def test_reduces_wasted_relaxations(self, cluster):
        heavy = rmat(120, 900, seed=33, name="heavy")
        plan = PROGRAMS["sssp"].plan(heavy)
        plain = SyncEngine(plan, cluster).run()
        stepped = SyncEngine(plan, cluster, delta_stepping=True).run()
        assert (
            stepped.counters.fprime_applications
            <= plain.counters.fprime_applications
        )

    def test_rejected_for_additive(self, graph, cluster):
        plan = PROGRAMS["pagerank"].plan(graph)
        with pytest.raises(ValueError, match="selective"):
            SyncEngine(plan, cluster, delta_stepping=True)


class TestImportanceThreshold:
    def test_threshold_reduces_work(self, graph, cluster):
        plan = PROGRAMS["pagerank"].plan(graph)
        plain = UnifiedEngine(plan, cluster, importance_threshold=0.0).run()
        thresholded = UnifiedEngine(plan, cluster).run()
        assert (
            thresholded.counters.fprime_applications
            <= plain.counters.fprime_applications
        )

    def test_threshold_keeps_results_within_epsilon(self, graph, cluster):
        plan = PROGRAMS["pagerank"].plan(graph)
        result = UnifiedEngine(plan, cluster).run()
        assert_same_values(result.values, reference_values("pagerank", graph), exact=False)


class TestMasterCheckRobustness:
    """Regression: with few workers, compute bursts are longer than the
    master's check interval; two checks observing the same snapshot must
    not fake epsilon convergence (the accumulation-progress gate)."""

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_epsilon_programs_correct_at_low_worker_counts(self, graph, workers):
        plan = PROGRAMS["pagerank"].plan(graph)
        reference = reference_values("pagerank", graph)
        cluster = ClusterConfig(num_workers=workers)
        result = UnifiedEngine(plan, cluster).run()
        assert_same_values(result.values, reference, exact=False)

    def test_scaling_reduces_simulated_time(self):
        from repro.graphs import load_dataset

        plan = PROGRAMS["pagerank"].plan(load_dataset("livej"))
        small = UnifiedEngine(plan, ClusterConfig(num_workers=2)).run()
        large = UnifiedEngine(plan, ClusterConfig(num_workers=16)).run()
        assert large.simulated_seconds < small.simulated_seconds


class TestInvalidConfig:
    def test_unknown_mode(self, graph, cluster):
        plan = PROGRAMS["sssp"].plan(graph)
        with pytest.raises(ValueError, match="unknown mode"):
            SyncEngine(plan, cluster, mode="magic")


class TestRemainingBenchmarkedPrograms:
    """Adsorption and BP (pair keys) across every execution mode."""

    @pytest.mark.parametrize("engine_name", ["sync", "async", "unified", "aap"])
    def test_adsorption(self, engine_name, graph, cluster):
        plan = PROGRAMS["adsorption"].plan(graph)
        result = ENGINE_BUILDERS[engine_name](plan, cluster).run()
        assert_same_values(
            result.values, reference_values("adsorption", graph), exact=False
        )

    @pytest.mark.parametrize("engine_name", ["sync", "async", "unified"])
    def test_bp_pair_keys(self, engine_name, cluster):
        small = rmat(30, 120, seed=44)
        plan = PROGRAMS["bp"].plan(small)
        result = ENGINE_BUILDERS[engine_name](plan, cluster).run()
        reference = reference_values("bp", small)
        assert_same_values(result.values, reference, exact=False)

    def test_apsp_pair_keys_sync(self, cluster):
        small = rmat(12, 36, seed=45)
        plan = PROGRAMS["apsp"].plan(small)
        result = ENGINE_BUILDERS["sync"](plan, cluster).run()
        assert_same_values(
            result.values, reference_values("apsp", small), exact=True
        )

    def test_deterministic_structure_grid(self, cluster):
        """A grid graph (fixed diameter) across sync and async."""
        from repro.graphs import grid_graph

        grid = grid_graph(6, 8)
        plan = PROGRAMS["sssp"].plan(grid)
        sync_result = ENGINE_BUILDERS["sync"](plan, cluster).run()
        async_result = ENGINE_BUILDERS["async"](plan, cluster).run()
        assert sync_result.values == async_result.values
        # BSP supersteps track the weighted-hop depth of the grid
        assert sync_result.counters.iterations >= 6 + 8 - 2
