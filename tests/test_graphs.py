"""Graph container, generators and IO."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    chain,
    erdos_renyi,
    grid_graph,
    locality_crawl,
    random_dag,
    read_edge_list,
    rmat,
    small_world,
    star,
    write_edge_list,
)
from repro.graphs.stats import bfs_depths, compute_stats


class TestGraphContainer:
    def test_weights_alignment_enforced(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 1), (1, 2)], weights=[1])

    def test_generated_weights_deterministic(self):
        graph = Graph(3, [(0, 1), (1, 2)], seed=5)
        assert graph.generate_weights() == graph.generate_weights()

    def test_generated_weights_in_range(self):
        graph = Graph(10, [(i, i + 1) for i in range(9)], seed=1)
        assert all(1 <= w <= 10 for w in graph.generate_weights())

    def test_adjacency(self):
        graph = Graph(3, [(0, 1), (0, 2), (2, 1)])
        assert graph.out_adjacency() == [[1, 2], [], [1]]
        assert graph.in_adjacency() == [[], [0, 2], [0]]

    def test_reversed(self):
        graph = Graph(3, [(0, 1)])
        assert graph.reversed().edges == [(1, 0)]

    def test_as_database_unweighted(self):
        db = Graph(3, [(0, 1)]).as_database()
        assert db.relation("edge").arity == 2
        assert len(db.relation("node")) == 3

    def test_as_database_weighted(self):
        db = Graph(3, [(0, 1)], weights=[7]).as_database(weighted=True)
        assert (0, 1, 7) in db.relation("edge")


class TestGenerators:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: rmat(50, 200, seed=seed),
            lambda seed: erdos_renyi(50, 200, seed=seed),
            lambda seed: small_world(50, 200, seed=seed),
            lambda seed: locality_crawl(50, 200, seed=seed),
            lambda seed: random_dag(50, 150, seed=seed),
        ],
        ids=["rmat", "er", "small-world", "crawl", "dag"],
    )
    def test_deterministic(self, factory):
        first, second = factory(9), factory(9)
        assert first.edges == second.edges

    def test_rmat_connected_from_zero(self):
        graph = rmat(100, 300, seed=2)
        assert len(bfs_depths(graph, 0)) == 100

    def test_rmat_no_self_loops_or_duplicates(self):
        graph = rmat(60, 300, seed=3)
        assert all(src != dst for src, dst in graph.edges)
        assert len(set(graph.edges)) == len(graph.edges)

    def test_rmat_power_law_skew(self):
        stats = compute_stats(rmat(500, 5000, seed=4))
        uniform = compute_stats(erdos_renyi(500, 5000, seed=4))
        assert stats.degree_skew > uniform.degree_skew

    def test_dag_is_acyclic(self):
        graph = random_dag(80, 240, seed=5)
        assert all(src < dst for src, dst in graph.edges)

    def test_crawl_has_larger_diameter_than_small_world(self):
        crawl = locality_crawl(400, 3000, seed=6, long_range=0.0005)
        sw = small_world(400, 3000, seed=6)
        assert (
            compute_stats(crawl).eccentricity_from_0
            > compute_stats(sw).eccentricity_from_0
        )

    def test_grid_dimensions(self):
        graph = grid_graph(3, 4)
        assert graph.num_vertices == 12
        assert graph.num_edges == 3 * 3 + 2 * 4  # rights + downs

    def test_chain_and_star(self):
        assert chain(5).num_edges == 4
        assert star(5).num_edges == 4
        assert compute_stats(chain(5)).eccentricity_from_0 == 4
        assert compute_stats(star(5)).eccentricity_from_0 == 1

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 1000))
    def test_rmat_respects_size_bounds(self, seed):
        graph = rmat(64, 256, seed=seed)
        assert graph.num_vertices == 64
        assert graph.num_edges <= 256 + 64  # requested edges + backbone


class TestIO:
    def test_round_trip_unweighted(self, tmp_path):
        graph = rmat(30, 90, seed=7, name="io-test")
        path = tmp_path / "graph.tsv"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_vertices == graph.num_vertices
        assert sorted(loaded.edges) == sorted(graph.edges)
        assert loaded.name == "io-test"

    def test_round_trip_weighted(self, tmp_path):
        graph = rmat(20, 60, seed=8).with_weights()
        path = tmp_path / "weighted.tsv"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.weights == graph.weights

    def test_headerless_file(self, tmp_path):
        path = tmp_path / "plain.tsv"
        path.write_text("0\t1\n1\t2\n")
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 3
        assert loaded.edges == [(0, 1), (1, 2)]

    def test_mixed_weights_rejected(self, tmp_path):
        path = tmp_path / "broken.tsv"
        path.write_text("0\t1\t5\n1\t2\n")
        with pytest.raises(ValueError):
            read_edge_list(path)


class TestStats:
    def test_bfs_depths(self):
        graph = chain(4)
        assert bfs_depths(graph, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_stats_row_shape(self):
        row = compute_stats(chain(4)).row()
        assert row["vertices"] == 4 and row["edges"] == 3
