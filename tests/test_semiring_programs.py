"""The four semiring program families, end to end.

Each family exercises one registered semiring -- boolean (why_reach),
counting (path_count), k-tropical (kpaths), Viterbi (reach_prob) -- and
each must (a) agree with an independent oracle, (b) reach the identical
fixpoint on every engine it is algebraically eligible for, on at least
two kernel backends, and (c) be refused, not silently mis-evaluated,
by backends whose carrier assumptions its semiring violates.
"""

import pytest

from repro import reference
from repro.aggregates import KTuple
from repro.distributed.aap import AAPEngine
from repro.distributed.async_engine import AsyncEngine
from repro.distributed.chaos_harness import default_graph
from repro.distributed.cluster import ClusterConfig
from repro.distributed.sync_engine import SyncEngine
from repro.distributed.unified import UnifiedEngine
from repro.engine import MRAEvaluator, NaiveEvaluator, SemiNaiveEvaluator
from repro.engine.seminaive import UnsupportedProgramError
from repro.programs import PROGRAMS
from repro.runtime import (
    HAVE_NUMPY,
    KernelUnavailableError,
    available_backends,
    get_kernel,
)

NEW_FAMILIES = ("why_reach", "path_count", "kpaths", "reach_prob")

#: programs whose ⊕ is idempotent run semi-naive too; additive ones are
#: rejected there by design (same as pagerank/dag_paths)
SEMINAIVE_OK = ("why_reach", "kpaths", "reach_prob")


def graph_for(name):
    return default_graph(name, seed=7)


def oracle_for(name, graph):
    if name == "why_reach":
        return reference.bfs_reachability(graph)
    if name == "path_count":
        return reference.dag_weighted_path_counts(graph)
    if name == "kpaths":
        return reference.k_shortest_path_lengths(graph)
    return reference.max_path_probability(graph)


def assert_matches_oracle(name, values, oracle):
    assert set(values) == set(oracle), name
    for key, expected in oracle.items():
        got = values[key]
        if isinstance(got, KTuple):
            assert tuple(got.values) == expected, (name, key, got, expected)
        else:
            assert got == pytest.approx(expected, abs=1e-12), (name, key)


class TestOracleAgreement:
    @pytest.mark.parametrize("name", NEW_FAMILIES)
    def test_mra_matches_oracle(self, name):
        graph = graph_for(name)
        values = MRAEvaluator(PROGRAMS[name].plan(graph)).run().values
        assert_matches_oracle(name, values, oracle_for(name, graph))

    def test_why_reach_is_boolean(self):
        graph = graph_for("why_reach")
        values = MRAEvaluator(PROGRAMS["why_reach"].plan(graph)).run().values
        assert set(values.values()) == {1.0}

    def test_kpaths_tuples_are_sorted_distinct_and_bounded(self):
        graph = graph_for("kpaths")
        values = MRAEvaluator(PROGRAMS["kpaths"].plan(graph)).run().values
        for tup in values.values():
            assert isinstance(tup, KTuple)
            assert 1 <= len(tup.values) <= KTuple.k
            assert list(tup.values) == sorted(set(tup.values))

    def test_kpaths_first_component_is_sssp(self):
        # the k=1 projection of the k-tropical fixpoint IS the tropical one
        graph = graph_for("kpaths")
        kpaths = MRAEvaluator(PROGRAMS["kpaths"].plan(graph)).run().values
        sssp = reference.dijkstra_sssp(graph)
        assert set(kpaths) == set(sssp)
        for key, tup in kpaths.items():
            assert tup.values[0] == sssp[key]


class TestSingleNodeEngines:
    @pytest.mark.parametrize("name", NEW_FAMILIES)
    def test_naive_matches_mra(self, name):
        spec = PROGRAMS[name]
        graph = graph_for(name)
        naive = NaiveEvaluator(spec.analysis(), spec.build_database(graph)).run()
        mra = MRAEvaluator(spec.plan(graph)).run()
        assert naive.values == mra.values

    @pytest.mark.parametrize("name", SEMINAIVE_OK)
    def test_seminaive_matches_mra(self, name):
        spec = PROGRAMS[name]
        graph = graph_for(name)
        semi = SemiNaiveEvaluator(spec.analysis(), spec.build_database(graph)).run()
        mra = MRAEvaluator(spec.plan(graph)).run()
        assert semi.values == mra.values

    def test_seminaive_rejects_additive_path_count(self):
        spec = PROGRAMS["path_count"]
        graph = graph_for("path_count")
        with pytest.raises(UnsupportedProgramError, match="monotonic"):
            SemiNaiveEvaluator(spec.analysis(), spec.build_database(graph))


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy backend not installed")
class TestDistributedEngines:
    ENGINES = {
        "sync": SyncEngine,
        "async": AsyncEngine,
        "unified": UnifiedEngine,
        "aap": AAPEngine,
    }

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    @pytest.mark.parametrize("name", NEW_FAMILIES)
    def test_engine_matches_oracle_on_two_backends(self, name, engine):
        spec = PROGRAMS[name]
        graph = graph_for(name)
        oracle = oracle_for(name, graph)
        cluster = ClusterConfig(num_workers=4)
        results = {}
        for backend in ("python", "numpy"):
            plan = spec.plan(graph)
            assert get_kernel(backend).supports_plan(plan)
            results[backend] = self.ENGINES[engine](
                plan, cluster, backend=backend
            ).run()
            assert_matches_oracle(name, results[backend].values, oracle)
        # the two backends must agree bit for bit, counters included
        assert results["python"].values == results["numpy"].values
        assert (
            results["python"].counters.snapshot()
            == results["numpy"].counters.snapshot()
        )


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy backend not installed")
class TestCarrierRefusal:
    """float64 backends refuse the KTuple carrier instead of corrupting it."""

    def test_sparse_supports_plan_is_false_for_kpaths(self):
        plan = PROGRAMS["kpaths"].plan(graph_for("kpaths"))
        for backend in available_backends():
            supported = get_kernel(backend).supports_plan(plan)
            assert supported == (backend in ("python", "numpy")), backend

    def test_sparse_construction_raises(self):
        plan = PROGRAMS["kpaths"].plan(graph_for("kpaths"))
        with pytest.raises(KernelUnavailableError, match="non-numeric"):
            get_kernel("sparse").from_plan(plan)

    def test_numeric_families_supported_everywhere(self):
        for name in ("why_reach", "path_count", "reach_prob"):
            plan = PROGRAMS[name].plan(graph_for(name))
            for backend in available_backends():
                assert get_kernel(backend).supports_plan(plan), (name, backend)


class TestCyclicInputCanonicalisation:
    """DAG builders + magnitude accounting survive cyclic/huge inputs.

    ``repro run dag_paths|path_count`` on the (cyclic) social datasets
    used to crash: the builders fed back-edges into a walk-counting
    fixpoint whose exact python-int counts then outgrew float64 inside
    the ``|ΔX| < eps`` magnitude conversion.  The builders now keep the
    forward sub-DAG (``src < dst``) and magnitudes saturate to inf.
    """

    def test_dag_builders_drop_back_edges(self):
        from repro.graphs import Graph
        from repro.programs import builders

        cyclic = Graph(4, [(0, 1), (1, 2), (2, 1), (3, 3), (2, 3)], name="cyc")
        db = builders.dag_db(cyclic)
        assert set(db.relation("edge")) == {(0, 1), (1, 2), (2, 3)}
        mdb = builders.multiplicity_dag_db(cyclic)
        assert {(s, d) for s, d, _ in mdb.relation("edge")} == {
            (0, 1),
            (1, 2),
            (2, 3),
        }

    def test_dag_builders_preserve_acyclic_fixtures(self):
        from repro.programs import builders

        graph = graph_for("path_count")
        assert all(src < dst for src, dst in graph.edges)
        rows = list(builders.multiplicity_dag_db(graph).relation("edge"))
        assert len(rows) == len(graph.edges)

    def test_magnitude_saturates_on_huge_int_carriers(self):
        from repro.aggregates import get_aggregate
        from repro.aggregates.semiring import COUNTING

        huge = 10**400  # far beyond float64's max of ~1.8e308
        assert COUNTING.value_magnitude(huge) == float("inf")
        assert get_aggregate("sum").delta_magnitude(huge) == float("inf")
        assert get_aggregate("count").change_magnitude(huge, None, huge) == float(
            "inf"
        )
