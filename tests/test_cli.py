"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCheck:
    def test_library_program_passes(self, capsys):
        assert main(["check", "sssp"]) == 0
        out = capsys.readouterr().out
        assert "MRA sat. = yes" in out

    def test_failing_program_exits_nonzero(self, capsys):
        assert main(["check", "gcn"]) == 1
        assert "MRA sat. = no" in capsys.readouterr().out

    def test_datalog_file(self, tmp_path, capsys):
        source = tmp_path / "reach.dl"
        source.write_text(
            "reach(X, v) :- X = 0, v = 1.\n"
            "reach(Y, sum[v1]) :- reach(X, v), edge(X, Y, w), "
            "v1 = 0.1 * v, {sum[dv] < 0.001}.\n"
        )
        assert main(["check", str(source)]) == 0
        assert "linear-homogeneous" in capsys.readouterr().out

    def test_smt2_emission(self, tmp_path, capsys):
        out_file = tmp_path / "check.smt2"
        main(["check", "pagerank", "--smt2", str(out_file)])
        assert "(check-sat)" in out_file.read_text()

    def test_unknown_target(self):
        with pytest.raises(SystemExit, match="neither a file nor"):
            main(["check", "no-such-thing"])


class TestRun:
    def test_run_powerlog(self, capsys):
        assert main(["run", "sssp", "--dataset", "flickr"]) == 0
        out = capsys.readouterr().out
        assert "SSSP on flickr" in out
        assert "simulated" in out

    def test_run_explicit_engine_with_top(self, capsys):
        assert main([
            "run", "cc", "--dataset", "flickr", "--engine", "sync", "--top", "2",
        ]) == 0
        assert "top 2" in capsys.readouterr().out

    def test_run_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["run", "sssp", "--dataset", "imagenet"])


class TestListing:
    def test_programs(self, capsys):
        assert main(["programs"]) == 0
        out = capsys.readouterr().out
        assert "GCN-Forward" in out and "SSSP" in out
        # the listing names each program's semiring and its law summary
        assert "k-tropical" in out and "⊕-idem,ordered" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "arabic" in out


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "18/18" in out

    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "Arabic-2005" in capsys.readouterr().out


class TestRunOnUserGraph:
    def test_graph_file_option(self, tmp_path, capsys):
        from repro.graphs import rmat, write_edge_list

        path = tmp_path / "mine.tsv"
        write_edge_list(rmat(30, 120, seed=2, name="mine"), path)
        assert main(["run", "cc", "--graph", str(path), "--engine", "sync"]) == 0
        out = capsys.readouterr().out
        assert "CC on mine" in out
