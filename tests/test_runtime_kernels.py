"""The vertex-runtime layer: kernel contract, registry and accounting.

Covers the pieces the engines now build on: backend resolution
(argument > ``REPRO_BACKEND`` > default), the MonoTable protocol and
inner loop on every registered backend, snapshot/restore/merge, the
optional-numpy degradation path, and the unified work-counter
semantics (``combines``/``updates``/``fprime_applications`` counted
inside the kernel, never by the engines).
"""

import pytest

from repro.distributed import Checkpointer, ClusterConfig
from repro.distributed.sharding import ShardedRun
from repro.distributed.sync_engine import SyncEngine
from repro.engine import MRAEvaluator, WorkCounters
from repro.graphs.graph import Graph
from repro.obs import Observability
from repro.programs import PROGRAMS
from repro.runtime import (
    BACKEND_ENV_VAR,
    KERNELS,
    HAVE_NUMPY,
    Kernel,
    KernelUnavailableError,
    available_backends,
    get_kernel,
    record_backend_metrics,
    resolve_backend,
)
from repro.runtime.compat import NUMPY_INSTALL_HINT, MissingNumpy

BACKENDS = available_backends()


def _deterministic_graph(num_vertices: int = 40) -> Graph:
    """A fixed digraph built without numpy so this module runs on the
    base install (the generators' RNG streams need numpy)."""
    edges = []
    for i in range(num_vertices):
        for stride in (1, 7, 13):
            edges.append((i, (i * 3 + stride) % num_vertices))
    weights = [1.0 + ((src * 31 + dst * 17) % 9) for src, dst in edges]
    return Graph(
        num_vertices=num_vertices, edges=edges, weights=weights, name="fixed"
    )


@pytest.fixture
def plan():
    return PROGRAMS["sssp"].plan(_deterministic_graph())


@pytest.fixture(params=BACKENDS)
def kernel_cls(request):
    return get_kernel(request.param)


class TestBackendResolution:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None) == "python"

    def test_env_var_honoured(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend(None) == "numpy"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend("python") == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cuda")

    def test_registry_has_all_kernels(self):
        assert set(KERNELS) == {"python", "numpy", "sparse", "jit"}

    def test_sparse_available_with_numpy(self):
        if HAVE_NUMPY:
            assert "sparse" in available_backends()
        else:
            assert "sparse" not in available_backends()

    def test_jit_gated_on_numba(self):
        from repro.runtime.compat import HAVE_NUMBA

        if HAVE_NUMBA and HAVE_NUMPY:
            assert "jit" in available_backends()
        else:
            assert "jit" not in available_backends()
            with pytest.raises(KernelUnavailableError, match="repro\\[jit\\]"):
                get_kernel("jit")

    def test_engines_resolve_env_backend(self, plan, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert MRAEvaluator(plan).backend == "python"

    def test_plan_resolution_keeps_numeric_preference(self, plan):
        from repro.runtime import resolve_backend_for_plan

        # numeric carriers resolve to the preference unchanged
        assert resolve_backend_for_plan(plan, "python") == "python"
        if HAVE_NUMPY:
            assert resolve_backend_for_plan(plan, "sparse") == "sparse"

    def test_plan_resolution_degrades_nonnumeric_carrier(self, monkeypatch):
        from repro.distributed.chaos_harness import default_graph
        from repro.programs import PROGRAMS
        from repro.runtime import resolve_backend_for_plan

        kplan = PROGRAMS["kpaths"].plan(default_graph("kpaths", seed=7))
        # a float64-backend preference cannot hold KTuple values: the
        # run degrades to the best object-capable backend instead of
        # crashing (numpy when installed, else python)
        expected = "numpy" if HAVE_NUMPY else "python"
        if HAVE_NUMPY:
            assert resolve_backend_for_plan(kplan, "sparse") == expected
        monkeypatch.setenv(BACKEND_ENV_VAR, "sparse" if HAVE_NUMPY else "python")
        assert resolve_backend_for_plan(kplan, None) == expected
        assert MRAEvaluator(kplan).backend == expected


class TestOptionalNumpy:
    def test_missing_numpy_proxy_raises_clean_import_error(self):
        proxy = MissingNumpy()
        assert not proxy
        with pytest.raises(ImportError, match="pip install"):
            proxy.asarray([1.0])

    def test_unavailable_backend_raises_import_error(self, plan, monkeypatch):
        monkeypatch.setattr(
            KERNELS["numpy"], "available", classmethod(lambda cls: False)
        )
        with pytest.raises(KernelUnavailableError, match="pip install"):
            get_kernel("numpy")
        # the error is an ImportError, so `except ImportError` guards work
        assert issubclass(KernelUnavailableError, ImportError)
        with pytest.raises(ImportError):
            MRAEvaluator(plan, backend="numpy").run()
        assert available_backends() == ["python"]

    def test_install_hint_names_the_extra(self):
        assert "repro[fast]" in NUMPY_INSTALL_HINT

    def test_jit_install_hint_names_the_extra(self):
        from repro.runtime.compat import NUMBA_INSTALL_HINT

        assert "repro[jit]" in NUMBA_INSTALL_HINT
        assert KERNELS["jit"].install_hint == NUMBA_INSTALL_HINT


class TestKernelContract:
    """Every registered backend honours the MonoTable protocol."""

    def test_from_plan_seeds_initial_state(self, kernel_cls, plan):
        kernel = kernel_cls.from_plan(plan)
        assert kernel.result() == dict(plan.initial)
        assert not kernel.has_pending()

    def test_push_combines_pending(self, kernel_cls, plan):
        kernel = kernel_cls.from_plan(plan)
        kernel.push(3, 5.0)
        kernel.push(3, 2.0)  # min aggregate: 2.0 wins
        assert kernel.pending_count() == 1
        assert kernel.fetch_and_reset(3) == 2.0
        assert kernel.fetch_and_reset(3) is None

    def test_step_reaches_the_reference_fixpoint(self, kernel_cls, plan):
        kernel = kernel_cls.from_plan(plan)
        from repro.engine.mra import compute_initial_delta

        kernel.push_many(compute_initial_delta(plan).items())
        for _ in range(10_000):
            if not kernel.step().changed and not kernel.has_pending():
                break
        reference = MRAEvaluator(plan, backend="python").run()
        assert kernel.result() == reference.values

    def test_snapshot_restore_roundtrip(self, kernel_cls, plan):
        kernel = kernel_cls.from_plan(plan)
        kernel.push(1, 4.0)
        kernel.accumulate(2, 9.0)
        snap = kernel.snapshot()
        restored = kernel_cls.from_plan(plan, initial={})
        restored.restore(snap)
        assert restored.result() == kernel.result()
        assert restored.intermediate == kernel.intermediate
        # the snapshot is a copy, not a view
        kernel.push(1, 1.0)
        assert restored.fetch_and_reset(1) == 4.0

    def test_merge_folds_with_g(self, kernel_cls, plan):
        left = kernel_cls.from_plan(plan, initial={})
        right = kernel_cls.from_plan(plan, initial={})
        left.accumulate(5, 3.0)
        right.accumulate(5, 1.0)
        right.push(6, 2.0)
        left.merge(right)
        assert left.result()[5] == 1.0  # min(3, 1)
        assert left.fetch_and_reset(6) == 2.0

    def test_state_dicts_hold_plain_floats(self, kernel_cls, plan):
        """The Checkpointer JSON boundary: accumulated/intermediate must
        expose builtin floats, never backend scalar types."""
        import json

        kernel = kernel_cls.from_plan(plan)
        kernel.push(1, 4.5)
        kernel.accumulate(2, 9.0)
        json.dumps({"acc": kernel.accumulated, "pend": kernel.intermediate})


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy backend not installed")
class TestNumpyCheckpointRoundtrip:
    def test_sharded_checkpoint_restores_numpy_shards(self, plan, tmp_path):
        state = ShardedRun(plan, ClusterConfig(num_workers=4), backend="numpy")
        state.seed_initial_delta()
        state.checkpoint(Checkpointer(tmp_path), "np-run")

        fresh = ShardedRun(plan, ClusterConfig(num_workers=4), backend="numpy")
        assert fresh.restore(Checkpointer(tmp_path), "np-run")
        for original, restored in zip(state.shards, fresh.shards):
            assert original.accumulated == restored.accumulated
            assert original.intermediate == restored.intermediate

    def test_cross_backend_checkpoint_interchange(self, plan, tmp_path):
        """A checkpoint written by one backend restores under the other."""
        state = ShardedRun(plan, ClusterConfig(num_workers=2), backend="python")
        state.seed_initial_delta()
        state.checkpoint(Checkpointer(tmp_path), "interchange")

        other = ShardedRun(plan, ClusterConfig(num_workers=2), backend="numpy")
        assert other.restore(Checkpointer(tmp_path), "interchange")
        for original, restored in zip(state.shards, other.shards):
            assert original.accumulated == restored.accumulated
            assert original.intermediate == restored.intermediate


class TestUnifiedCounters:
    """combines/updates/F' are counted inside the kernel, once."""

    @pytest.mark.skipif(
        not HAVE_NUMPY, reason="the cluster simulator's RNG streams need numpy"
    )
    def test_single_worker_sync_matches_mra_work(self, plan):
        """One BSP worker performs exactly the MRA reference's g/F' work."""
        mra = MRAEvaluator(plan).run()
        sync = SyncEngine(plan, ClusterConfig(num_workers=1)).run()
        for field in ("combines", "updates", "fprime_applications"):
            assert getattr(sync.counters, field) == getattr(mra.counters, field)

    def test_fold_contributions_counts_combines(self):
        aggregate = PROGRAMS["sssp"].analysis().aggregate
        counters = WorkCounters()
        for backend in BACKENDS:
            counters_before = counters.combines
            folded = get_kernel(backend).fold_contributions(
                aggregate, [(1, 5.0), (1, 3.0), (2, 7.0)], counters
            )
            assert folded == {1: 3.0, 2: 7.0}
            # 3 contributions over 2 keys -> exactly 1 combine
            assert counters.combines - counters_before == 1

    def test_accumulate_counts_updates(self, kernel_cls, plan):
        kernel = kernel_cls.from_plan(plan, initial={})
        changed, _ = kernel.accumulate(1, 5.0)
        assert changed and kernel.counters.updates == 1
        changed, _ = kernel.accumulate(1, 7.0)  # min: no improvement
        assert not changed and kernel.counters.updates == 1
        changed, _ = kernel.accumulate(1, 2.0)
        assert changed and kernel.counters.updates == 2

    def test_counter_snapshots_identical_across_backends(self, plan):
        if len(BACKENDS) < 2:
            pytest.skip("only one backend installed")
        runs = {b: MRAEvaluator(plan, backend=b).run() for b in BACKENDS}
        snapshots = {b: r.counters.snapshot() for b, r in runs.items()}
        reference = snapshots[BACKENDS[0]]
        assert all(snap == reference for snap in snapshots.values())


class TestBackendObservability:
    def test_result_records_backend(self, plan):
        result = MRAEvaluator(plan, backend="python").run()
        assert result.backend == "python"
        assert result.engine == "mra"

    def test_metrics_record_backend_runs(self, plan):
        obs = Observability()
        MRAEvaluator(plan, obs=obs, backend="python").run()
        counters = obs.metrics.snapshot()["counters"]
        matching = {
            key: value
            for key, value in counters.items()
            if key.startswith("runtime.backend_runs")
        }
        assert matching
        (key,) = matching
        assert "backend=python" in key and "engine=mra" in key
        assert matching[key] == 1

    def test_record_backend_metrics_labels_numpy_version(self):
        if not HAVE_NUMPY:
            pytest.skip("numpy backend not installed")
        obs = Observability()
        record_backend_metrics(obs.metrics, "mra", "numpy")
        (key,) = [
            k
            for k in obs.metrics.snapshot()["counters"]
            if k.startswith("runtime.backend_runs")
        ]
        assert "numpy_version=" in key


def test_base_kernel_is_abstract(plan):
    kernel = Kernel()
    with pytest.raises(NotImplementedError):
        kernel.push(0, 1.0)
