"""Relation and Database storage."""

import pytest

from repro.engine import Database
from repro.engine.relation import Relation


class TestRelation:
    def test_add_deduplicates(self):
        relation = Relation("edge", 2)
        assert relation.add((1, 2))
        assert not relation.add((1, 2))
        assert len(relation) == 1

    def test_arity_enforced(self):
        relation = Relation("edge", 2)
        with pytest.raises(ValueError, match="3-tuple"):
            relation.add((1, 2, 3))

    def test_extend_counts_new(self):
        relation = Relation("edge", 2)
        assert relation.extend([(1, 2), (1, 2), (2, 3)]) == 2

    def test_lookup_by_position(self):
        relation = Relation("edge", 3, [(1, 2, 10), (1, 3, 20), (2, 3, 30)])
        rows = relation.lookup([0], (1,))
        assert sorted(rows) == [(1, 2, 10), (1, 3, 20)]

    def test_lookup_multiple_positions(self):
        relation = Relation("edge", 3, [(1, 2, 10), (1, 3, 20)])
        assert relation.lookup([0, 1], (1, 3)) == [(1, 3, 20)]

    def test_lookup_no_positions_scans_all(self):
        relation = Relation("edge", 2, [(1, 2), (2, 3)])
        assert len(relation.lookup([], ())) == 2

    def test_index_invalidated_on_mutation(self):
        relation = Relation("edge", 2, [(1, 2)])
        assert relation.lookup([0], (1,)) == [(1, 2)]
        relation.add((1, 3))
        assert sorted(relation.lookup([0], (1,))) == [(1, 2), (1, 3)]

    def test_replace(self):
        relation = Relation("edge", 2, [(1, 2)])
        relation.replace([(5, 6)])
        assert list(relation) == [(5, 6)]

    def test_clear(self):
        relation = Relation("edge", 2, [(1, 2)])
        relation.clear()
        assert len(relation) == 0

    def test_contains(self):
        relation = Relation("edge", 2, [(1, 2)])
        assert (1, 2) in relation and (2, 1) not in relation


class TestDatabase:
    def test_create_and_fetch(self):
        db = Database()
        created = db.relation("edge", 2)
        assert db.relation("edge") is created

    def test_missing_relation(self):
        with pytest.raises(KeyError):
            Database().relation("nope")

    def test_arity_conflict(self):
        db = Database()
        db.relation("edge", 2)
        with pytest.raises(ValueError):
            db.relation("edge", 3)

    def test_add_facts_infers_arity(self):
        db = Database()
        db.add_facts("edge", [(1, 2, 5)])
        assert db.relation("edge").arity == 3

    def test_add_facts_empty_rejected(self):
        with pytest.raises(ValueError):
            Database().add_facts("edge", [])

    def test_copy_is_independent(self):
        db = Database()
        db.add_facts("edge", [(1, 2)])
        duplicate = db.copy()
        duplicate.relation("edge").add((3, 4))
        assert len(db.relation("edge")) == 1
        assert len(duplicate.relation("edge")) == 2

    def test_names_sorted(self):
        db = Database()
        db.add_facts("z", [(1,)])
        db.add_facts("a", [(1,)])
        assert db.names() == ["a", "z"]
