"""Shared fixtures: small graphs, databases and compiled plans."""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.graphs import Graph, rmat, random_dag


@pytest.fixture
def diamond_db() -> Database:
    """A small weighted digraph with known shortest paths from vertex 1.

    1 -> 2 (4), 1 -> 3 (1), 3 -> 2 (1), 2 -> 4 (2), 3 -> 4 (5):
    distances from 1 are {1: 0, 2: 2, 3: 1, 4: 4}.
    """
    db = Database()
    db.add_facts("edge", [(1, 2, 4), (1, 3, 1), (3, 2, 1), (2, 4, 2), (3, 4, 5)])
    db.add_facts("node", [(1,), (2,), (3,), (4,)])
    return db


@pytest.fixture
def triangle_db() -> Database:
    """A 3-cycle with an extra chord, for PageRank-style programs."""
    db = Database()
    db.add_facts("edge", [(1, 2), (2, 1), (2, 3), (3, 1)])
    db.add_facts("node", [(1,), (2,), (3,)])
    return db


@pytest.fixture
def small_graph() -> Graph:
    """A connected power-law digraph (40 vertices)."""
    return rmat(40, 160, seed=3, name="small")


@pytest.fixture
def medium_graph() -> Graph:
    """A connected power-law digraph (120 vertices)."""
    return rmat(120, 600, seed=7, name="medium")


@pytest.fixture
def small_dag() -> Graph:
    """A random DAG rooted at vertex 0 (30 vertices)."""
    return random_dag(30, 80, seed=4, name="small-dag")


@pytest.fixture
def pair_graph() -> Graph:
    """A tiny graph for quadratic-key programs (APSP, SimRank)."""
    return rmat(14, 42, seed=11, name="pair")


SSSP_SOURCE = """
sssp(X, d) :- X = 1, d = 0.
sssp(Y, min[dy]) :- sssp(X, dx), edge(X, Y, dxy), dy = dx + dxy.
"""

PAGERANK_SOURCE = """
assume d > 0.
degree(X, count[Y]) :- edge(X, Y).
rank(0, X, r) :- node(X), r = 0.
rank(i+1, Y, sum[ry]) :- node(Y), ry = 0.15;
    :- rank(i, X, rx), edge(X, Y), degree(X, d),
       ry = 0.85 * rx / d, {sum[delta] < 0.0001}.
"""

CC_SOURCE = """
cc(X, X) :- edge(X, _).
cc(Y, min[v]) :- cc(X, v), edge(X, Y).
"""


@pytest.fixture
def sssp_source() -> str:
    return SSSP_SOURCE


@pytest.fixture
def pagerank_source() -> str:
    return PAGERANK_SOURCE


@pytest.fixture
def cc_source() -> str:
    return CC_SOURCE
