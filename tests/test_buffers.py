"""Message buffers and the paper's adaptive sizing rule (section 5.3)."""

from repro.aggregates import MIN, SUM
from repro.distributed import AdaptiveBuffer, BufferPolicy, FixedBuffer


class TestFixedBuffer:
    def test_combines_duplicate_keys(self):
        buffer = FixedBuffer(beta=10, tau=1.0)
        buffer.add("a", 3, SUM.combine)
        buffer.add("a", 4, SUM.combine)
        assert buffer.pending == {"a": 7}
        assert buffer.pending_count == 1

    def test_min_combining_prunes_in_buffer(self):
        buffer = FixedBuffer(beta=10, tau=1.0)
        buffer.add("a", 5, MIN.combine)
        buffer.add("a", 3, MIN.combine)
        buffer.add("a", 9, MIN.combine)
        assert buffer.pending == {"a": 3}

    def test_flush_by_size(self):
        buffer = FixedBuffer(beta=2, tau=100.0)
        buffer.add("a", 1, SUM.combine)
        assert not buffer.should_flush(now=0.0)
        buffer.add("b", 1, SUM.combine)
        assert buffer.should_flush(now=0.0)

    def test_flush_by_age(self):
        buffer = FixedBuffer(beta=100, tau=0.5)
        buffer.add("a", 1, SUM.combine)
        assert not buffer.should_flush(now=0.4)
        assert buffer.should_flush(now=0.6)

    def test_empty_never_flushes(self):
        buffer = FixedBuffer(beta=1, tau=0.0)
        assert not buffer.should_flush(now=100.0)

    def test_flush_empties_and_stamps(self):
        buffer = FixedBuffer(beta=1, tau=1.0)
        buffer.add("a", 1, SUM.combine)
        payload = buffer.flush(now=2.0)
        assert payload == {"a": 1}
        assert buffer.pending == {} and buffer.last_flush_time == 2.0


class TestAdaptiveBuffer:
    def _policy(self, **kwargs):
        defaults = dict(initial_beta=64, tau=1.0, alpha=0.8, r=2.0)
        defaults.update(kwargs)
        return BufferPolicy(adaptive=True, **defaults)

    def test_fast_pace_grows_beta(self):
        buffer = AdaptiveBuffer(self._policy())
        # 1000 updates in 1 simulated second: pace 1000 > r * beta/tau = 128
        for i in range(1000):
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        assert buffer.beta == 0.8 * 1.0 * 1000  # alpha * tau * |B|/dT

    def test_slow_pace_shrinks_beta(self):
        buffer = AdaptiveBuffer(self._policy())
        for i in range(10):  # pace 10 < beta/(r*tau) = 32
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        assert buffer.beta == 0.8 * 10

    def test_in_band_pace_keeps_beta(self):
        buffer = AdaptiveBuffer(self._policy())
        for i in range(64):  # pace 64, band is (32, 128)
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        assert buffer.beta == 64

    def test_clamped_to_bounds(self):
        policy = self._policy(min_beta=8, max_beta=100)
        buffer = AdaptiveBuffer(policy)
        for i in range(100_000):
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        assert buffer.beta == 100

        buffer2 = AdaptiveBuffer(policy)
        buffer2.add(0, 1, SUM.combine)
        buffer2.observe_flush(now=10.0)
        assert buffer2.beta == 8

    def test_window_resets_after_flush(self):
        buffer = AdaptiveBuffer(self._policy())
        for i in range(1000):
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        first_beta = buffer.beta
        buffer.observe_flush(now=2.0)  # empty window: pace 0 -> shrink to min
        assert buffer.beta <= first_beta

    def test_non_adaptive_policy_never_adapts(self):
        buffer = AdaptiveBuffer(BufferPolicy(adaptive=False, initial_beta=64))
        for i in range(1000):
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        assert buffer.beta == 64

    def test_zero_length_window_is_ignored(self):
        buffer = AdaptiveBuffer(self._policy())
        for i in range(1000):
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=0.0)  # dT == 0: pace undefined, keep beta
        assert buffer.beta == 64
        # the window is not consumed either: the next real flush sees it
        buffer.observe_flush(now=1.0)
        assert buffer.beta == 0.8 * 1000

    def test_negative_window_is_ignored(self):
        buffer = AdaptiveBuffer(self._policy())
        buffer._window_start = 5.0
        buffer.add(0, 1, SUM.combine)
        buffer.observe_flush(now=4.0)  # clock behind the window start
        assert buffer.beta == 64

    def test_clamp_boundary_exact(self):
        # pace that computes exactly to min_beta / max_beta stays put
        policy = self._policy(min_beta=8.0, max_beta=800.0)
        buffer = AdaptiveBuffer(policy)
        for i in range(10):
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)  # 0.8 * 10 = 8.0 == min_beta
        assert buffer.beta == 8.0
        buffer2 = AdaptiveBuffer(policy)
        for i in range(1000):
            buffer2.add(i, 1, SUM.combine)
        buffer2.observe_flush(now=1.0)  # 0.8 * 1000 = 800.0 == max_beta
        assert buffer2.beta == 800.0

    def test_on_adapt_hook_fires_only_on_change(self):
        calls = []
        buffer = AdaptiveBuffer(
            self._policy(), on_adapt=lambda *args: calls.append(args)
        )
        for i in range(64):  # in band: no adaptation, no callback
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        assert calls == []
        for i in range(1000):
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=2.0)
        assert len(calls) == 1
        now, old, new, pace = calls[0]
        assert (now, old, new, pace) == (2.0, 64, 800.0, 1000.0)

    def test_on_adapt_not_called_when_clamped_to_same_value(self):
        calls = []
        policy = self._policy(min_beta=64, max_beta=64)
        buffer = AdaptiveBuffer(policy, on_adapt=lambda *args: calls.append(args))
        for i in range(1000):
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)  # rule fires, clamp keeps beta == 64
        assert buffer.beta == 64 and calls == []
