"""Message buffers and the paper's adaptive sizing rule (section 5.3)."""

from repro.aggregates import MIN, SUM
from repro.distributed import AdaptiveBuffer, BufferPolicy, FixedBuffer


class TestFixedBuffer:
    def test_combines_duplicate_keys(self):
        buffer = FixedBuffer(beta=10, tau=1.0)
        buffer.add("a", 3, SUM.combine)
        buffer.add("a", 4, SUM.combine)
        assert buffer.pending == {"a": 7}
        assert buffer.pending_count == 1

    def test_min_combining_prunes_in_buffer(self):
        buffer = FixedBuffer(beta=10, tau=1.0)
        buffer.add("a", 5, MIN.combine)
        buffer.add("a", 3, MIN.combine)
        buffer.add("a", 9, MIN.combine)
        assert buffer.pending == {"a": 3}

    def test_flush_by_size(self):
        buffer = FixedBuffer(beta=2, tau=100.0)
        buffer.add("a", 1, SUM.combine)
        assert not buffer.should_flush(now=0.0)
        buffer.add("b", 1, SUM.combine)
        assert buffer.should_flush(now=0.0)

    def test_flush_by_age(self):
        buffer = FixedBuffer(beta=100, tau=0.5)
        buffer.add("a", 1, SUM.combine)
        assert not buffer.should_flush(now=0.4)
        assert buffer.should_flush(now=0.6)

    def test_empty_never_flushes(self):
        buffer = FixedBuffer(beta=1, tau=0.0)
        assert not buffer.should_flush(now=100.0)

    def test_flush_empties_and_stamps(self):
        buffer = FixedBuffer(beta=1, tau=1.0)
        buffer.add("a", 1, SUM.combine)
        payload = buffer.flush(now=2.0)
        assert payload == {"a": 1}
        assert buffer.pending == {} and buffer.last_flush_time == 2.0


class TestAdaptiveBuffer:
    def _policy(self, **kwargs):
        defaults = dict(initial_beta=64, tau=1.0, alpha=0.8, r=2.0)
        defaults.update(kwargs)
        return BufferPolicy(adaptive=True, **defaults)

    def test_fast_pace_grows_beta(self):
        buffer = AdaptiveBuffer(self._policy())
        # 1000 updates in 1 simulated second: pace 1000 > r * beta/tau = 128
        for i in range(1000):
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        assert buffer.beta == 0.8 * 1.0 * 1000  # alpha * tau * |B|/dT

    def test_slow_pace_shrinks_beta(self):
        buffer = AdaptiveBuffer(self._policy())
        for i in range(10):  # pace 10 < beta/(r*tau) = 32
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        assert buffer.beta == 0.8 * 10

    def test_in_band_pace_keeps_beta(self):
        buffer = AdaptiveBuffer(self._policy())
        for i in range(64):  # pace 64, band is (32, 128)
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        assert buffer.beta == 64

    def test_clamped_to_bounds(self):
        policy = self._policy(min_beta=8, max_beta=100)
        buffer = AdaptiveBuffer(policy)
        for i in range(100_000):
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        assert buffer.beta == 100

        buffer2 = AdaptiveBuffer(policy)
        buffer2.add(0, 1, SUM.combine)
        buffer2.observe_flush(now=10.0)
        assert buffer2.beta == 8

    def test_window_resets_after_flush(self):
        buffer = AdaptiveBuffer(self._policy())
        for i in range(1000):
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        first_beta = buffer.beta
        buffer.observe_flush(now=2.0)  # empty window: pace 0 -> shrink to min
        assert buffer.beta <= first_beta

    def test_non_adaptive_policy_never_adapts(self):
        buffer = AdaptiveBuffer(BufferPolicy(adaptive=False, initial_beta=64))
        for i in range(1000):
            buffer.add(i, 1, SUM.combine)
        buffer.observe_flush(now=1.0)
        assert buffer.beta == 64
