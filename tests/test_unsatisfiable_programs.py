"""The two programs that fail the check: GCN-Forward and CommNet.

These tests close the loop on the paper's premise: evaluating a
non-satisfiable program with MRA evaluation *produces wrong results*
(section 6.1: "evaluating these programs with MRA evaluation will lead
to incorrect results"), so the automatic check is what makes incremental
execution safe -- and PowerLog's naive fallback still computes them
correctly.
"""

import pytest

from repro.distributed import ClusterConfig
from repro.engine import MRAEvaluator, NaiveEvaluator, compile_plan
from repro.graphs import rmat
from repro.programs import PROGRAMS
from repro.systems import PowerLog


@pytest.fixture(scope="module")
def graph():
    return rmat(40, 160, seed=95, name="unsat-graph")


class TestNaiveEvaluationWorks:
    @pytest.mark.parametrize("name", ["gcn", "commnet"])
    def test_converges_under_naive(self, name, graph):
        spec = PROGRAMS[name]
        result = NaiveEvaluator(spec.analysis(), spec.build_database(graph)).run()
        assert result.stop_reason == "epsilon"
        assert result.values


class TestMRAWouldBeWrong:
    """Why the condition check matters: MRA on GCN diverges from naive."""

    def test_gcn_mra_differs_from_naive(self, graph):
        spec = PROGRAMS["gcn"]
        analysis = spec.analysis()
        db = spec.build_database(graph)
        naive = NaiveEvaluator(analysis, db).run()
        mra = MRAEvaluator(compile_plan(analysis, db)).run()
        worst = max(
            abs(naive.values[key] - mra.values.get(key, 0.0))
            for key in naive.values
        )
        # the relu non-linearity breaks Property 2: results genuinely differ
        assert worst > 1e-3, (
            "MRA accidentally matched naive on GCN -- the negative result "
            "of section 6.1 should reproduce"
        )


class TestPowerLogFallback:
    @pytest.mark.parametrize("name", ["gcn", "commnet"])
    def test_routed_to_naive_and_correct(self, name, graph):
        spec = PROGRAMS[name]
        system = PowerLog()
        decision = system.decide(spec)
        assert decision.evaluation == "naive"

        expected = NaiveEvaluator(spec.analysis(), spec.build_database(graph)).run()
        result = system.run(spec, graph, ClusterConfig(num_workers=4))
        assert "naive" in result.engine
        for key, value in expected.values.items():
            assert result.values[key] == pytest.approx(value, abs=2e-3), key
