"""Rational canonical forms and algebraic equality proofs."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.expr import Call, Polynomial, const, evaluate, exprs_equal, rational_form, var
from repro.expr.simplify import NonRationalError

rationals = st.fractions(min_value=-20, max_value=20, max_denominator=16)


class TestPolynomial:
    def test_constant(self):
        poly = Polynomial.constant(Fraction(3))
        assert poly.is_constant() and poly.constant_value() == 3

    def test_zero_is_empty(self):
        assert Polynomial.constant(Fraction(0)).is_zero()

    def test_addition_cancels(self):
        x = Polynomial.atom("x")
        assert (x - x).is_zero()

    def test_multiplication_merges_monomials(self):
        x = Polynomial.atom("x")
        square = x * x
        assert square.degree_in("x") == 2

    def test_coefficient_extraction(self):
        x = Polynomial.atom("x")
        three = Polynomial.constant(Fraction(3))
        poly = x * three + Polynomial.constant(Fraction(5))
        assert poly.coefficient_of("x", 1).constant_value() == 3
        assert poly.coefficient_of("x", 0).constant_value() == 5

    def test_mentions(self):
        x = Polynomial.atom("x")
        assert x.mentions("x") and not x.mentions("y")


class TestExprsEqual:
    def test_distributive_law(self):
        x, y, z = var("x"), var("y"), var("z")
        assert exprs_equal(x * (y + z), x * y + x * z)

    def test_division_cross_multiplication(self):
        x, d = var("x"), var("d")
        assert exprs_equal((x + x) / d, 2 * x / d)

    def test_nested_fractions(self):
        x, d = var("x"), var("d")
        assert exprs_equal(x / d / 2, x / (2 * d))

    def test_inequality_detected(self):
        x = var("x")
        assert not exprs_equal(x * x, x + x)

    def test_pagerank_additivity(self):
        """The core of Property 2 for PageRank: f(x+y) = f(x)+f(y)."""
        f = lambda e: const(0.85) * e / var("d")
        x, y = var("x"), var("y")
        assert exprs_equal(f(x + y), f(x) + f(y))

    def test_relu_is_opaque_but_consistent(self):
        x = var("x")
        relu_x = Call("relu", (x,))
        assert exprs_equal(relu_x + relu_x, 2 * relu_x)
        # different arguments -> different atoms -> not provably equal
        assert not exprs_equal(relu_x, Call("relu", (x + 1,)))

    def test_call_atoms_identified_by_canonical_argument(self):
        x = var("x")
        assert exprs_equal(
            Call("relu", (x + x,)), Call("relu", (2 * x,))
        )


class TestRationalFormErrors:
    def test_division_by_zero_polynomial(self):
        x = var("x")
        with pytest.raises(NonRationalError):
            rational_form(x / (x - x))


class TestSoundness:
    """A proved equality must hold numerically at random points."""

    @given(x=rationals, y=rationals, d=rationals)
    def test_proved_identity_holds_numerically(self, x, y, d):
        if d == 0:
            return
        left = const(0.85) * (var("x") + var("y")) / var("d")
        right = const(0.85) * var("x") / var("d") + const(0.85) * var("y") / var("d")
        assert exprs_equal(left, right)
        env = {"x": x, "y": y, "d": d}
        assert evaluate(left, env) == evaluate(right, env)

    @given(a=rationals, b=rationals)
    def test_unequal_expressions_differ_somewhere(self, a, b):
        """(x+a) vs (x+b) are proved equal iff a == b."""
        left = var("x") + const(a)
        right = var("x") + const(b)
        assert exprs_equal(left, right) == (a == b)
