"""Checkpointing and recovery of MonoTable state."""

import os

import pytest

from repro.aggregates import MIN, SUM
from repro.distributed import Checkpointer, CheckpointMismatchError
from repro.engine import MonoTable, MRAEvaluator
from repro.engine.monotable import MonoTable as MonoTableClass
from repro.engine.mra import compute_initial_delta
from repro.graphs import rmat
from repro.programs import PROGRAMS


class TestRoundTrip:
    def test_save_and_restore(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        table = MonoTable(SUM, initial={1: 10.5, 2: -3})
        table.push(1, 2.5)
        checkpointer.save_shard("run", 0, table)

        restored = MonoTable(SUM, initial={})
        checkpointer.restore_shard("run", 0, restored)
        assert restored.accumulated == table.accumulated
        assert restored.intermediate == table.intermediate

    def test_tuple_keys_roundtrip(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        table = MonoTable(MIN, initial={(0, 3): 4, (1, 2): 7})
        checkpointer.save_shard("pairs", 2, table)
        restored = MonoTable(MIN, initial={})
        checkpointer.restore_shard("pairs", 2, restored)
        assert restored.accumulated == {(0, 3): 4, (1, 2): 7}

    def test_aggregate_mismatch_rejected(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1}))
        with pytest.raises(ValueError, match="does not match"):
            checkpointer.restore_shard("run", 0, MonoTable(MIN, initial={}))

    def test_has_checkpoint(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        assert not checkpointer.has_checkpoint("run", 0)
        checkpointer.save_shard("run", 0, MonoTable(SUM, initial={}))
        assert checkpointer.has_checkpoint("run", 0)


class TestRobustOnDiskFormat:
    """Atomic writes, corruption tolerance, run-compatibility metadata."""

    def test_save_leaves_no_temp_file(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1}))
        assert os.path.exists(path)
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []

    def test_save_overwrites_atomically(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1.0}))
        checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 2.0}))
        restored = MonoTable(SUM, initial={})
        assert checkpointer.restore_shard("run", 0, restored)
        assert restored.accumulated == {1: 2.0}

    def test_corrupt_checkpoint_warns_and_reports_missing(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1}))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema": 2, "accum')  # torn write
        with pytest.warns(RuntimeWarning, match="unreadable"):
            ok = checkpointer.restore_shard("run", 0, MonoTable(SUM, initial={}))
        assert not ok

    def test_payload_missing_columns_warns(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1}))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema": 2, "aggregate": "sum"}')  # valid JSON, wrong shape
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert not checkpointer.restore_shard(
                "run", 0, MonoTable(SUM, initial={})
            )

    def test_missing_checkpoint_is_silent(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not checkpointer.restore_shard(
                "never", 0, MonoTable(SUM, initial={})
            )

    def test_metadata_mismatch_fails_loudly(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        meta = {"program": "sssp", "num_workers": 4}
        checkpointer.save_shard("run", 0, MonoTable(MIN, initial={1: 1}), meta=meta)
        # same metadata restores fine
        assert checkpointer.restore_shard(
            "run", 0, MonoTable(MIN, initial={}), expect_meta=meta
        )
        # a different worker count is a different run
        with pytest.raises(CheckpointMismatchError, match="num_workers"):
            checkpointer.restore_shard(
                "run",
                0,
                MonoTable(MIN, initial={}),
                expect_meta={"program": "sssp", "num_workers": 8},
            )
        # so is a different program
        with pytest.raises(CheckpointMismatchError, match="program"):
            checkpointer.restore_shard(
                "run",
                0,
                MonoTable(MIN, initial={}),
                expect_meta={"program": "cc", "num_workers": 4},
            )

    def test_shard_id_mismatch_fails_loudly(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.save_shard("run", 0, MonoTable(MIN, initial={1: 1}))
        os.replace(path, checkpointer._path("run", 3))
        with pytest.raises(CheckpointMismatchError, match="shard"):
            checkpointer.restore_shard("run", 3, MonoTable(MIN, initial={}))


class TestRecoveryReachesFixpoint:
    """Restoring mid-run state and continuing reaches the same fixpoint."""

    def test_sssp_resume(self, tmp_path):
        graph = rmat(50, 200, seed=41)
        plan = PROGRAMS["sssp"].plan(graph)
        expected = MRAEvaluator(plan).run().values

        # run a few rounds manually, checkpoint, "crash", restore, finish
        table = MonoTableClass(plan.aggregate, plan.initial)
        table.push_many(compute_initial_delta(plan).items())
        for _ in range(2):
            for key, tmp in table.drain_all().items():
                changed, _ = table.accumulate(key, tmp)
                if changed:
                    for dst, params, fn in plan.edges_from(key):
                        table.push(dst, fn(tmp, *params))

        checkpointer = Checkpointer(tmp_path)
        checkpointer.save_shard("sssp", 0, table)

        recovered = MonoTableClass(plan.aggregate, {})
        checkpointer.restore_shard("sssp", 0, recovered)
        while recovered.has_pending():
            for key, tmp in recovered.drain_all().items():
                changed, _ = recovered.accumulate(key, tmp)
                if changed:
                    for dst, params, fn in plan.edges_from(key):
                        recovered.push(dst, fn(tmp, *params))
        assert recovered.result() == expected
