"""Checkpointing and recovery of MonoTable state."""

import os

import pytest

from repro.aggregates import MIN, SUM
from repro.distributed import Checkpointer, CheckpointMismatchError
from repro.engine import MonoTable, MRAEvaluator
from repro.engine.monotable import MonoTable as MonoTableClass
from repro.engine.mra import compute_initial_delta
from repro.graphs import rmat
from repro.programs import PROGRAMS


class TestRoundTrip:
    def test_save_and_restore(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        table = MonoTable(SUM, initial={1: 10.5, 2: -3})
        table.push(1, 2.5)
        checkpointer.save_shard("run", 0, table)

        restored = MonoTable(SUM, initial={})
        checkpointer.restore_shard("run", 0, restored)
        assert restored.accumulated == table.accumulated
        assert restored.intermediate == table.intermediate

    def test_tuple_keys_roundtrip(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        table = MonoTable(MIN, initial={(0, 3): 4, (1, 2): 7})
        checkpointer.save_shard("pairs", 2, table)
        restored = MonoTable(MIN, initial={})
        checkpointer.restore_shard("pairs", 2, restored)
        assert restored.accumulated == {(0, 3): 4, (1, 2): 7}

    def test_aggregate_mismatch_rejected(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1}))
        with pytest.raises(ValueError, match="does not match"):
            checkpointer.restore_shard("run", 0, MonoTable(MIN, initial={}))

    def test_has_checkpoint(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        assert not checkpointer.has_checkpoint("run", 0)
        checkpointer.save_shard("run", 0, MonoTable(SUM, initial={}))
        assert checkpointer.has_checkpoint("run", 0)


class TestRobustOnDiskFormat:
    """Atomic writes, corruption tolerance, run-compatibility metadata."""

    def test_save_leaves_no_temp_file(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1}))
        assert os.path.exists(path)
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []

    def test_save_overwrites_atomically(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1.0}))
        checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 2.0}))
        restored = MonoTable(SUM, initial={})
        assert checkpointer.restore_shard("run", 0, restored)
        assert restored.accumulated == {1: 2.0}

    def test_corrupt_checkpoint_warns_and_reports_missing(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1}))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema": 2, "accum')  # torn write
        with pytest.warns(RuntimeWarning, match="unreadable"):
            ok = checkpointer.restore_shard("run", 0, MonoTable(SUM, initial={}))
        assert not ok

    def test_payload_missing_columns_warns(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1}))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema": 2, "aggregate": "sum"}')  # valid JSON, wrong shape
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert not checkpointer.restore_shard(
                "run", 0, MonoTable(SUM, initial={})
            )

    def test_missing_checkpoint_is_silent(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not checkpointer.restore_shard(
                "never", 0, MonoTable(SUM, initial={})
            )

    def test_metadata_mismatch_fails_loudly(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        meta = {"program": "sssp", "num_workers": 4}
        checkpointer.save_shard("run", 0, MonoTable(MIN, initial={1: 1}), meta=meta)
        # same metadata restores fine
        assert checkpointer.restore_shard(
            "run", 0, MonoTable(MIN, initial={}), expect_meta=meta
        )
        # a different worker count is a different run
        with pytest.raises(CheckpointMismatchError, match="num_workers"):
            checkpointer.restore_shard(
                "run",
                0,
                MonoTable(MIN, initial={}),
                expect_meta={"program": "sssp", "num_workers": 8},
            )
        # so is a different program
        with pytest.raises(CheckpointMismatchError, match="program"):
            checkpointer.restore_shard(
                "run",
                0,
                MonoTable(MIN, initial={}),
                expect_meta={"program": "cc", "num_workers": 4},
            )

    def test_shard_id_mismatch_fails_loudly(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.save_shard("run", 0, MonoTable(MIN, initial={1: 1}))
        os.replace(path, checkpointer._path("run", 3))
        with pytest.raises(CheckpointMismatchError, match="shard"):
            checkpointer.restore_shard("run", 3, MonoTable(MIN, initial={}))


class TestRecoveryReachesFixpoint:
    """Restoring mid-run state and continuing reaches the same fixpoint."""

    def test_sssp_resume(self, tmp_path):
        graph = rmat(50, 200, seed=41)
        plan = PROGRAMS["sssp"].plan(graph)
        expected = MRAEvaluator(plan).run().values

        # run a few rounds manually, checkpoint, "crash", restore, finish
        table = MonoTableClass(plan.aggregate, plan.initial)
        table.push_many(compute_initial_delta(plan).items())
        for _ in range(2):
            for key, tmp in table.drain_all().items():
                changed, _ = table.accumulate(key, tmp)
                if changed:
                    for dst, params, fn in plan.edges_from(key):
                        table.push(dst, fn(tmp, *params))

        checkpointer = Checkpointer(tmp_path)
        checkpointer.save_shard("sssp", 0, table)

        recovered = MonoTableClass(plan.aggregate, {})
        checkpointer.restore_shard("sssp", 0, recovered)
        while recovered.has_pending():
            for key, tmp in recovered.drain_all().items():
                changed, _ = recovered.accumulate(key, tmp)
                if changed:
                    for dst, params, fn in plan.edges_from(key):
                        recovered.push(dst, fn(tmp, *params))
        assert recovered.result() == expected


def _flip_accumulated_value(path):
    """Corrupt one aggregate in place without touching the checksum."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    key = next(iter(payload["accumulated"]))
    payload["accumulated"][key] = (payload["accumulated"][key] or 0) + 1000.0
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path


class TestChecksumCorruption:
    """Schema-3 payloads are checksummed; bit flips fail loudly but
    recoverably (CheckpointCorruptionError is a CheckpointMismatchError,
    and the engines degrade it to reseed-and-replay)."""

    def test_bit_flip_raises_corruption_error(self, tmp_path):
        from repro.distributed import CheckpointCorruptionError

        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 10.5}))
        _flip_accumulated_value(path)
        with pytest.raises(CheckpointCorruptionError, match="checksum"):
            checkpointer.restore_shard("run", 0, MonoTable(SUM, initial={}))

    def test_corruption_error_is_a_mismatch_error(self):
        from repro.distributed import CheckpointCorruptionError

        assert issubclass(CheckpointCorruptionError, CheckpointMismatchError)

    def test_truncated_shard_degrades_to_missing(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1.0}))
        with open(path, "r+", encoding="utf-8") as handle:
            handle.truncate(20)  # torn write survives as invalid JSON
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert not checkpointer.restore_shard("run", 0, MonoTable(SUM, initial={}))

    def test_legacy_payload_without_checksum_still_restores(self, tmp_path):
        import json

        checkpointer = Checkpointer(tmp_path)
        path = checkpointer._path("run", 0)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "schema": 2,
                    "aggregate": "sum",
                    "shard_id": 0,
                    "meta": {},
                    "accumulated": {"1": 4.0},
                    "intermediate": {},
                },
                handle,
            )
        restored = MonoTable(SUM, initial={})
        assert checkpointer.restore_shard("run", 0, restored)
        assert restored.accumulated == {1: 4.0}

    def test_restore_guard_distinguishes_corruption_from_mismatch(self, tmp_path):
        from repro.distributed.fault import restore_guarding_corruption

        checkpointer = Checkpointer(tmp_path)
        path = checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1.0}))
        _flip_accumulated_value(path)
        with pytest.warns(RuntimeWarning, match="reseed-and-replay"):
            assert not restore_guarding_corruption(
                lambda: checkpointer.restore_shard("run", 0, MonoTable(SUM, initial={})),
                what="test restore",
            )
        # a genuine run mismatch must keep propagating through the guard
        checkpointer.save_shard("other", 0, MonoTable(SUM, initial={1: 1.0}))
        with pytest.raises(CheckpointMismatchError):
            restore_guarding_corruption(
                lambda: checkpointer.restore_shard(
                    "other", 0, MonoTable(MIN, initial={})
                ),
                what="test restore",
            )


class TestEngineSurvivesCorruption:
    """A corrupt shard on disk must not crash a resuming engine: the run
    falls back to reseed-and-replay and still reaches the fixpoint."""

    def test_sync_engine_falls_back_to_replay(self, tmp_path):
        from repro.distributed import ClusterConfig, SyncEngine

        graph = rmat(40, 160, seed=11)
        plan = PROGRAMS["sssp"].plan(graph)
        cluster = ClusterConfig(num_workers=4)
        expected = SyncEngine(plan, cluster).run().values

        checkpointer = Checkpointer(tmp_path)
        first = SyncEngine(
            PROGRAMS["sssp"].plan(graph),
            cluster,
            checkpointer=checkpointer,
            checkpoint_every=2,
            run_name="corrupt-me",
        ).run()
        assert first.values == expected
        assert checkpointer.has_checkpoint("corrupt-me", 1)

        _flip_accumulated_value(checkpointer._path("corrupt-me", 1))
        with pytest.warns(RuntimeWarning, match="reseed-and-replay"):
            resumed = SyncEngine(
                PROGRAMS["sssp"].plan(graph),
                cluster,
                checkpointer=checkpointer,
                checkpoint_every=2,
                run_name="corrupt-me",
            ).run()
        assert resumed.values == expected

    def test_async_engine_falls_back_to_replay(self, tmp_path):
        from repro.distributed import AsyncEngine, ClusterConfig

        graph = rmat(40, 160, seed=11)
        plan = PROGRAMS["sssp"].plan(graph)
        cluster = ClusterConfig(num_workers=4)
        expected = AsyncEngine(plan, cluster).run().values

        checkpointer = Checkpointer(tmp_path)
        AsyncEngine(
            PROGRAMS["sssp"].plan(graph),
            cluster,
            checkpointer=checkpointer,
            checkpoint_interval=1e-4,
            run_name="corrupt-async",
        ).run()
        assert checkpointer.has_checkpoint("corrupt-async", 0)

        _flip_accumulated_value(checkpointer._path("corrupt-async", 0))
        with pytest.warns(RuntimeWarning, match="reseed-and-replay"):
            resumed = AsyncEngine(
                PROGRAMS["sssp"].plan(graph),
                cluster,
                checkpointer=checkpointer,
                run_name="corrupt-async",
            ).run()
        assert resumed.values == expected
