"""Checkpointing and recovery of MonoTable state."""

import math

import pytest

from repro.aggregates import MIN, SUM
from repro.distributed import Checkpointer
from repro.engine import MonoTable, MRAEvaluator
from repro.engine.monotable import MonoTable as MonoTableClass
from repro.engine.mra import compute_initial_delta
from repro.graphs import rmat
from repro.programs import PROGRAMS


class TestRoundTrip:
    def test_save_and_restore(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        table = MonoTable(SUM, initial={1: 10.5, 2: -3})
        table.push(1, 2.5)
        checkpointer.save_shard("run", 0, table)

        restored = MonoTable(SUM, initial={})
        checkpointer.restore_shard("run", 0, restored)
        assert restored.accumulated == table.accumulated
        assert restored.intermediate == table.intermediate

    def test_tuple_keys_roundtrip(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        table = MonoTable(MIN, initial={(0, 3): 4, (1, 2): 7})
        checkpointer.save_shard("pairs", 2, table)
        restored = MonoTable(MIN, initial={})
        checkpointer.restore_shard("pairs", 2, restored)
        assert restored.accumulated == {(0, 3): 4, (1, 2): 7}

    def test_aggregate_mismatch_rejected(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        checkpointer.save_shard("run", 0, MonoTable(SUM, initial={1: 1}))
        with pytest.raises(ValueError, match="does not match"):
            checkpointer.restore_shard("run", 0, MonoTable(MIN, initial={}))

    def test_has_checkpoint(self, tmp_path):
        checkpointer = Checkpointer(tmp_path)
        assert not checkpointer.has_checkpoint("run", 0)
        checkpointer.save_shard("run", 0, MonoTable(SUM, initial={}))
        assert checkpointer.has_checkpoint("run", 0)


class TestRecoveryReachesFixpoint:
    """Restoring mid-run state and continuing reaches the same fixpoint."""

    def test_sssp_resume(self, tmp_path):
        graph = rmat(50, 200, seed=41)
        plan = PROGRAMS["sssp"].plan(graph)
        expected = MRAEvaluator(plan).run().values

        # run a few rounds manually, checkpoint, "crash", restore, finish
        table = MonoTableClass(plan.aggregate, plan.initial)
        table.push_many(compute_initial_delta(plan).items())
        for _ in range(2):
            for key, tmp in table.drain_all().items():
                changed, _ = table.accumulate(key, tmp)
                if changed:
                    for dst, params, fn in plan.edges_from(key):
                        table.push(dst, fn(tmp, *params))

        checkpointer = Checkpointer(tmp_path)
        checkpointer.save_shard("sssp", 0, table)

        recovered = MonoTableClass(plan.aggregate, {})
        checkpointer.restore_shard("sssp", 0, recovered)
        while recovered.has_pending():
            for key, tmp in recovered.drain_all().items():
                changed, _ = recovered.accumulate(key, tmp)
                if changed:
                    for dst, params, fn in plan.edges_from(key):
                        recovered.push(dst, fn(tmp, *params))
        assert recovered.result() == expected
