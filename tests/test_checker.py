"""The automatic MRA condition checker: prover, refuter, reports."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aggregates import MEAN, MIN, SUM, get_aggregate
from repro.checker import (
    Status,
    check_analysis,
    check_source,
    refute_property1,
    refute_property2,
)
from repro.checker.prover import prove_property1, prove_property2
from repro.datalog import analyze, parse_program
from repro.expr import Interval, evaluate, var
from repro.programs import PROGRAMS


class TestTable1:
    """The headline reproduction: 12 of the paper's 14 programs pass,
    2 fail (Table 1); the 4 semiring-family extensions all pass."""

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_verdict_matches_paper(self, name):
        spec = PROGRAMS[name]
        report = check_analysis(spec.analysis())
        assert report.mra_satisfiable == spec.expected_mra

    def test_sixteen_pass_two_fail(self):
        verdicts = [
            check_analysis(spec.analysis()).mra_satisfiable
            for spec in PROGRAMS.values()
        ]
        assert sum(verdicts) == 16 and len(verdicts) == 18

    @pytest.mark.parametrize(
        "name", [n for n, s in PROGRAMS.items() if s.expected_mra]
    )
    def test_positives_are_structurally_proved(self, name):
        """Positives must be proofs, not merely unrefuted (Z3's 'unsat')."""
        report = check_analysis(PROGRAMS[name].analysis())
        assert report.property2.status is Status.PROVED
        assert report.property2.method.startswith("structural")

    @pytest.mark.parametrize(
        "name", [n for n, s in PROGRAMS.items() if not s.expected_mra]
    )
    def test_negatives_carry_counterexamples(self, name):
        report = check_analysis(PROGRAMS[name].analysis())
        assert report.property2.status is Status.REFUTED
        assert report.property2.counterexample is not None


class TestProperty1:
    def test_predefined_operators_proved(self):
        for name in ("min", "max", "sum", "count"):
            result = prove_property1(get_aggregate(name))
            assert result is not None and result.holds

    def test_mean_not_provable(self):
        assert prove_property1(MEAN) is None

    def test_mean_refuted_with_witness(self):
        witness = refute_property1(MEAN)
        assert witness is not None
        a = witness.inputs.get("a")
        b = witness.inputs.get("b")
        c = witness.inputs.get("c")
        # verify the counterexample actually violates associativity
        assert MEAN.combine(MEAN.combine(a, b), c) != MEAN.combine(
            a, MEAN.combine(b, c)
        )

    def test_sum_not_refutable(self):
        assert refute_property1(SUM) is None


class TestProperty2Prover:
    def test_min_with_monotone_fprime(self):
        result = prove_property2(MIN, var("x") + var("w"), "x", {})
        assert result is not None and result.holds

    def test_sum_with_linear_fprime(self):
        result = prove_property2(SUM, var("x") * var("w"), "x", {})
        assert result is not None and result.holds

    def test_sum_with_affine_fprime_not_proved(self):
        # x + w is not additive: sum over paths would double-count w
        assert prove_property2(SUM, var("x") + var("w"), "x", {}) is None

    def test_min_needs_domains_for_scaling(self):
        expr = var("x") * var("w")
        assert prove_property2(MIN, expr, "x", {}) is None
        domains = {"w": Interval(0.0, 1.0)}
        result = prove_property2(MIN, expr, "x", domains)
        assert result is not None and result.holds


class TestProperty2Refuter:
    def test_sum_affine_refuted(self):
        witness = refute_property2(SUM, var("x") + var("w"), "x", {})
        assert witness is not None

    def test_gcn_counterexample_is_genuine(self):
        analysis = PROGRAMS["gcn"].analysis()
        witness = refute_property2(
            SUM, analysis.fprime, analysis.recursion_var, analysis.domains
        )
        assert witness is not None
        # replay the witness: g(f(g(x,y))) must differ from g(f(x), f(y))
        inputs = dict(witness.inputs)
        x = inputs.pop("x", None)
        y = inputs.pop("y", None)
        if x is not None and y is not None:
            env = dict(inputs)

            def f(value):
                env[analysis.recursion_var] = value
                return evaluate(analysis.fprime, env)

            assert f(x + y) != f(x) + f(y)

    def test_pagerank_not_refuted(self):
        analysis = PROGRAMS["pagerank"].analysis()
        witness = refute_property2(
            SUM, analysis.fprime, analysis.recursion_var, analysis.domains
        )
        assert witness is None

    def test_min_with_decreasing_fprime_refuted(self):
        witness = refute_property2(MIN, -var("x"), "x", {})
        assert witness is not None


class TestCheckSource:
    def test_end_to_end_positive(self, sssp_source):
        report = check_source(sssp_source, name="sssp")
        assert report.mra_satisfiable
        assert "yes" in report.summary()

    def test_end_to_end_negative(self):
        source = (
            "gcn(Y, sum[g1]) :- gcn(X, g), a(X, Y, w), para(p), "
            "g1 = relu(g * p) * w."
        )
        report = check_source(source, name="gcn")
        assert not report.mra_satisfiable

    def test_table_row_shape(self, sssp_source):
        row = check_source(sssp_source, name="sssp").table_row()
        assert row == {"program": "sssp", "mra_sat": "yes", "aggregator": "min"}


class TestRefuterSoundness:
    """Random linear programs must never be refuted (they satisfy P2)."""

    @settings(deadline=None, max_examples=10)
    @given(
        coefficient=st.fractions(min_value=-5, max_value=5, max_denominator=8),
    )
    def test_linear_sum_programs_never_refuted(self, coefficient):
        fprime = var("x") * float(coefficient)
        assert refute_property2(SUM, fprime, "x", {}) is None

    @settings(deadline=None, max_examples=10)
    @given(
        shift=st.fractions(min_value=-5, max_value=5, max_denominator=8),
    )
    def test_shifted_min_programs_never_refuted(self, shift):
        fprime = var("x") + float(shift)
        assert refute_property2(MIN, fprime, "x", {}) is None


class TestUnknownVerdict:
    """Properties the prover cannot decide and the refuter cannot break.

    A cubic is genuinely monotone, but outside the structural fragment;
    like Z3 answering 'unknown', the checker must stay conservative and
    reject the program rather than guess.
    """

    def test_cubic_min_program_is_unknown(self):
        source = """
        p(X, v) :- X = 0, v = 1.
        p(Y, min[v1]) :- p(X, v), edge(X, Y), v1 = v * v * v.
        """
        report = check_source(source, name="cubic")
        assert report.property2.status is Status.UNKNOWN
        assert not report.mra_satisfiable

    def test_unknown_routes_to_naive(self):
        from repro.systems import PowerLog
        from repro.programs import ProgramSpec
        from repro.programs.builders import plain_graph_db

        source = """
        p(X, v) :- X = 0, v = 1.
        p(Y, min[v1]) :- p(X, v), edge(X, Y), v1 = v * v * v.
        """
        spec = ProgramSpec(
            name="cubic", title="Cubic", source=source, aggregator="min",
            expected_mra=False, build_database=plain_graph_db,
        )
        decision = PowerLog().decide(spec)
        assert decision.evaluation == "naive"

    def test_mean_program_fails_property1(self):
        source = """
        p(X, v) :- X = 0, v = 1.
        p(Y, mean[v1]) :- p(X, v), edge(X, Y), v1 = v.
        """
        report = check_source(source, name="averaging")
        assert report.property1.status is Status.REFUTED
        assert report.property1.counterexample is not None
        assert not report.mra_satisfiable
