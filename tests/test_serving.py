"""Unit tests for the multi-tenant serving layer."""

import json

import pytest

from repro.serving import (
    CacheEntry,
    CircuitBreaker,
    FAILED,
    OK,
    OK_STALE,
    Request,
    ResultCache,
    SHED,
    ServeChaos,
    ServeConfig,
    ServingService,
    TIMEOUT,
    TenantSpec,
    TERMINAL_STATUSES,
    WorkloadSpec,
    build_report,
    cache_key,
    default_chaos,
    generate_workload,
    percentile,
    render_text,
    report_to_json,
)
from repro.serving.service import Outage


def single_spec(**overrides):
    """A one-tenant, one-program, one-engine spec for focused tests."""
    base = dict(
        num_requests=6,
        arrival_rate=2.0,
        burst_factor=1.0,
        tenants=(TenantSpec("solo", queue_capacity=8, deadline=6.0),),
        program_mix=(("sssp", 1.0),),
        engine_mix=(("sync", 1.0),),
        params_mix={},
        version_bumps=(),
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestWorkload:
    def test_same_seed_same_workload(self):
        spec = WorkloadSpec(num_requests=30)
        first = generate_workload(spec, seed=3)
        second = generate_workload(spec, seed=3)
        assert [
            (r.id, r.tenant, r.program, r.engine, r.params, r.arrival)
            for r in first
        ] == [
            (r.id, r.tenant, r.program, r.engine, r.params, r.arrival)
            for r in second
        ]

    def test_different_seed_differs(self):
        spec = WorkloadSpec(num_requests=30)
        first = generate_workload(spec, seed=3)
        second = generate_workload(spec, seed=4)
        assert [r.arrival for r in first] != [r.arrival for r in second]

    def test_burst_window_raises_rate(self):
        spec = WorkloadSpec(burst_start=1.0, burst_end=2.0, burst_factor=10.0)
        assert spec.rate_at(1.5) == 10.0 * spec.arrival_rate
        assert spec.rate_at(0.5) == spec.arrival_rate
        assert spec.rate_at(2.0) == spec.arrival_rate

    def test_deadlines_are_absolute(self):
        spec = single_spec()
        for request in generate_workload(spec, seed=1):
            assert request.deadline == pytest.approx(request.arrival + 6.0)


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("sync", failure_threshold=3, reset_timeout=1.0)
        breaker.on_failure(0.1)
        breaker.on_failure(0.2)
        assert breaker.state == "closed"
        breaker.on_failure(0.3)
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allows(0.5)

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker("sync", failure_threshold=2)
        breaker.on_failure(0.1)
        breaker.on_success(0.2)
        breaker.on_failure(0.3)
        assert breaker.state == "closed"

    def test_half_open_admits_single_probe(self):
        breaker = CircuitBreaker("sync", failure_threshold=1, reset_timeout=0.5)
        breaker.on_failure(0.0)
        assert breaker.state == "open"
        assert breaker.half_open_at == pytest.approx(0.5)
        assert breaker.allows(0.6)
        assert breaker.state == "half-open"
        breaker.on_attempt_start(0.6)
        assert not breaker.allows(0.61)  # one probe at a time

    def test_probe_failure_reopens_probe_success_closes(self):
        breaker = CircuitBreaker("sync", failure_threshold=1, reset_timeout=0.5)
        breaker.on_failure(0.0)
        breaker.poll(0.6)
        breaker.on_attempt_start(0.6)
        breaker.on_failure(0.7)
        assert breaker.state == "open"
        assert breaker.trips == 2
        breaker.poll(1.3)
        breaker.on_attempt_start(1.3)
        breaker.on_success(1.4)
        assert breaker.state == "closed"
        assert breaker.closes == 1

    def test_transition_hook_sees_every_edge(self):
        edges = []
        breaker = CircuitBreaker(
            "sync",
            failure_threshold=1,
            reset_timeout=0.5,
            on_transition=lambda now, engine, old, new: edges.append((old, new)),
        )
        breaker.on_failure(0.0)
        breaker.poll(0.6)
        breaker.on_success(0.7)
        assert edges == [("closed", "open"), ("open", "half-open"), ("half-open", "closed")]


class TestResultCache:
    def entry(self, version, computed_at=0.0):
        return CacheEntry(
            key=cache_key("sssp", version, ()),
            values={0: 0.0},
            computed_at=computed_at,
            graph_version=version,
            stop_reason="fixpoint",
            engine="sync",
        )

    def test_fresh_requires_current_version_and_ttl(self):
        cache = ResultCache(freshness_ttl=1.0)
        cache.put(self.entry(1, computed_at=0.0))
        assert cache.fresh("sssp", 1, (), now=0.5) is not None
        assert cache.fresh("sssp", 1, (), now=2.0) is None  # too old
        assert cache.fresh("sssp", 2, (), now=0.5) is None  # old version

    def test_fallback_prefers_newest_version(self):
        cache = ResultCache(freshness_ttl=1.0)
        cache.put(self.entry(1))
        cache.put(self.entry(2))
        hit = cache.fallback("sssp", 3, ())
        assert hit is not None and hit.graph_version == 2
        assert cache.fallback("pagerank", 3, ()) is None


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50.0) == 2.0
        assert percentile(values, 99.0) == 4.0
        assert percentile([], 50.0) == 0.0
        assert percentile([7.0], 99.0) == 7.0


class TestServiceLifecycle:
    def test_every_request_reaches_exactly_one_terminal_state(self):
        spec = WorkloadSpec(num_requests=40)
        outcome = ServingService(ServeConfig()).run(spec, seed=5)
        ids = [r.request_id for r in outcome.responses]
        assert sorted(ids) == list(range(40))
        assert all(r.status in TERMINAL_STATUSES for r in outcome.responses)

    def test_overload_sheds_explicitly(self):
        spec = single_spec(
            num_requests=16,
            arrival_rate=400.0,
            tenants=(TenantSpec("solo", queue_capacity=3, deadline=6.0),),
        )
        outcome = ServingService(ServeConfig(executors=1)).run(spec, seed=5)
        statuses = [r.status for r in outcome.responses]
        assert SHED in statuses
        shed = [r for r in outcome.responses if r.status == SHED]
        assert all(r.detail == "queue-full" and r.latency == 0.0 for r in shed)
        assert outcome.counters["shed"] == len(shed)

    def test_unmeetable_deadline_times_out_with_empty_cache(self):
        spec = single_spec(
            num_requests=1,
            tenants=(TenantSpec("solo", queue_capacity=4, deadline=1e-4),),
        )
        outcome = ServingService(ServeConfig()).run(spec, seed=5)
        (response,) = outcome.responses
        assert response.status == TIMEOUT
        assert response.values == {}

    def test_all_attempts_failing_is_failed_not_lost(self):
        chaos = ServeChaos(attempt_failure_rate=1.0)
        spec = single_spec(num_requests=2, arrival_rate=0.3)
        outcome = ServingService(ServeConfig(max_attempts=2), chaos=chaos).run(
            spec, seed=5
        )
        assert [r.status for r in outcome.responses] == [FAILED, FAILED]
        assert all(r.attempts == 2 for r in outcome.responses)
        assert all(r.detail == "retries-exhausted" for r in outcome.responses)
        assert outcome.counters["retries"] >= 2

    def test_outage_serves_stale_from_cache(self):
        # request 0 computes and caches; the outage then fails every
        # sync attempt, so later requests degrade to the stale fixpoint
        spec = single_spec(num_requests=8, arrival_rate=1.0)
        requests = generate_workload(spec, seed=5)
        outage_start = requests[0].arrival + 0.5  # after request 0 completed
        chaos = ServeChaos(outages=(Outage("sync", outage_start, 1e9),))
        config = ServeConfig(freshness_ttl=0.05, max_attempts=2)
        outcome = ServingService(config, chaos=chaos).serve(requests, spec, seed=5)
        statuses = [r.status for r in outcome.responses]
        assert statuses[0] == OK
        assert OK_STALE in statuses
        stale = [r for r in outcome.responses if r.status == OK_STALE]
        assert all(r.stale and r.stale_age > 0 for r in stale)
        assert all(r.values for r in stale)
        breaker = outcome.breakers["sync"]
        assert breaker["trips"] >= 1

    def test_fresh_cache_hits_do_not_rerun_engines(self):
        spec = single_spec(num_requests=10, arrival_rate=50.0)
        config = ServeConfig(freshness_ttl=100.0)
        outcome = ServingService(config).run(spec, seed=5)
        assert all(r.status == OK for r in outcome.responses)
        assert outcome.counters["executions_full"] == 1
        assert outcome.counters["cache_fresh_hits"] == 9

    def test_version_bump_invalidates_fresh_path(self):
        spec = single_spec(num_requests=8, arrival_rate=1.0, version_bumps=(3.0,))
        config = ServeConfig(freshness_ttl=100.0)
        outcome = ServingService(config).run(spec, seed=5)
        assert outcome.final_graph_version == 2
        versions = {r.graph_version for r in outcome.responses if r.served}
        assert versions == {1, 2}
        # the v2 answer is real work, never the stale v1 entry: either a
        # second full run or (for RA32x-maintainable sssp) a delta repair
        assert (
            outcome.counters["executions_full"]
            + outcome.counters["executions_repaired"]
            >= 2
        )

    def test_checkpointed_recomputation_resumes(self, tmp_path):
        spec = single_spec(num_requests=8, arrival_rate=0.8)
        config = ServeConfig(freshness_ttl=0.1)
        outcome = ServingService(config, checkpoint_dir=str(tmp_path)).run(
            spec, seed=5
        )
        assert outcome.counters["executions_resumed"] >= 1
        resumed = [
            profile
            for key, profile in outcome.profiles.items()
            if key[-1] == "resume"
        ]
        assert resumed and all(p.resumed for p in resumed)
        full = outcome.profiles[resumed[0].key + ("full",)]
        # restoring at the fixpoint must be cheaper than the cold run
        assert resumed[0].duration < full.duration
        assert resumed[0].values == full.values

    def _request(self, id, arrival, deadline=None):
        return Request(
            id=id,
            tenant="solo",
            program="sssp",
            engine="sync",
            arrival=arrival,
            deadline=arrival + 6.0 if deadline is None else deadline,
        )

    def test_version_bump_in_flight_does_not_pollute_cache(self):
        # request 0 is executing when the bump lands; its v1 fixpoint
        # must stay keyed on v1, so request 1 (graph v2) cannot be
        # served it as a fresh OK answer
        spec = single_spec(num_requests=2, version_bumps=(0.001,))
        requests = [self._request(0, 0.0), self._request(1, 1.0)]
        config = ServeConfig(freshness_ttl=100.0)
        outcome = ServingService(config).serve(requests, spec, seed=5)
        first, second = outcome.responses
        assert first.status == OK and first.graph_version == 1
        assert second.status == OK and second.graph_version == 2
        assert outcome.counters["cache_fresh_hits"] == 0
        # the v2 answer is computed (full run or delta repair of the v1
        # fixpoint), never the cached v1 entry passed off as fresh
        assert (
            outcome.counters["executions_full"]
            + outcome.counters["executions_repaired"]
            == 2
        )

    def test_deadline_expired_queued_requests_release_queue_slots(self):
        # requests 1-3 fill the queue and deadline out before their
        # first dispatch; their admission slots must come back, so the
        # late request 4 is admitted instead of spuriously shed
        spec = single_spec(
            num_requests=5,
            tenants=(TenantSpec("solo", queue_capacity=3, deadline=6.0),),
        )
        requests = [self._request(0, 0.0)]
        requests += [
            self._request(i, 0.0001, deadline=0.001) for i in (1, 2, 3)
        ]
        requests.append(self._request(4, 0.005))
        outcome = ServingService(ServeConfig(executors=1)).serve(
            requests, spec, seed=5
        )
        by_id = {r.request_id: r for r in outcome.responses}
        assert [by_id[i].status for i in (1, 2, 3)] == [TIMEOUT] * 3
        assert by_id[4].status == OK

    def test_cache_hit_cost_does_not_shift_global_clock(self):
        # requests 1 and 2 queue behind request 0 and both hit the
        # fresh cache when it completes: each pays cache_cost once,
        # from the same dispatch instant -- the cost never accumulates
        # onto the shared clock
        spec = single_spec(num_requests=3)
        requests = [
            self._request(0, 0.0),
            self._request(1, 0.001),
            self._request(2, 0.002),
        ]
        config = ServeConfig(executors=1, freshness_ttl=100.0)
        outcome = ServingService(config).serve(requests, spec, seed=5)
        first, hit1, hit2 = outcome.responses
        assert hit1.served_from == "cache" and hit2.served_from == "cache"
        assert hit1.resolved_at == pytest.approx(
            first.resolved_at + config.cache_cost
        )
        assert hit2.resolved_at == pytest.approx(hit1.resolved_at)

    def test_execution_counters_match_report_engine_runs(self, tmp_path):
        spec = single_spec(num_requests=8, arrival_rate=0.8)
        config = ServeConfig(freshness_ttl=0.1)
        service = ServingService(config, checkpoint_dir=str(tmp_path))
        outcome = service.run(spec, seed=5)
        report = build_report(outcome, spec, config)
        assert (
            outcome.counters["executions_full"]
            == report["engine_runs"]["distinct"]
        )
        assert (
            outcome.counters["executions_resumed"]
            == report["engine_runs"]["resumed"]
        )
        assert (
            outcome.counters["executions_repaired"]
            == report["engine_runs"]["repaired"]
        )

    def test_serving_loop_survives_corrupt_checkpoint(self, tmp_path):
        from tests.test_fault import _flip_accumulated_value

        spec = single_spec(num_requests=4, arrival_rate=0.8)
        config = ServeConfig(freshness_ttl=0.1)
        service = ServingService(config, checkpoint_dir=str(tmp_path))
        first = service.run(spec, seed=5)
        assert first.counters["executions_resumed"] >= 1

        shard_files = sorted(tmp_path.glob("*.shard*.json"))
        assert shard_files
        _flip_accumulated_value(shard_files[0])
        fresh = ServingService(config, checkpoint_dir=str(tmp_path))
        with pytest.warns(RuntimeWarning, match="reseed-and-replay"):
            second = fresh.run(spec, seed=5)
        assert all(r.status in TERMINAL_STATUSES for r in second.responses)
        served_first = {r.request_id: r.values for r in first.responses if r.served}
        served_second = {r.request_id: r.values for r in second.responses if r.served}
        assert served_second == served_first


class TestDeltaRepair:
    """A version bump is an applied GraphDelta; certified programs repair
    the stale fixpoint instead of recomputing from scratch."""

    @staticmethod
    def _request(id, arrival, program="sssp"):
        return Request(
            id=id,
            tenant="solo",
            program=program,
            engine="sync",
            arrival=arrival,
            deadline=arrival + 6.0,
        )

    def _bump_outcome(self, program="sssp"):
        spec = single_spec(
            num_requests=2,
            program_mix=((program, 1.0),),
            version_bumps=(0.5,),
        )
        requests = [self._request(0, 0.0, program), self._request(1, 1.0, program)]
        config = ServeConfig(freshness_ttl=100.0)
        return ServingService(config).serve(requests, spec, seed=5)

    def test_version_bump_takes_repair_path(self):
        # regression pin for the delta-repair fast path: v1 runs full,
        # the v2 request repairs the cached v1 fixpoint and is answered
        # FRESH (OK, not OK_STALE) at the new version
        outcome = self._bump_outcome()
        first, second = outcome.responses
        assert first.status == OK and first.graph_version == 1
        assert first.detail == "computed"
        assert second.status == OK and second.graph_version == 2
        assert not second.stale
        assert second.detail == "repaired"
        assert outcome.counters["executions_full"] == 1
        assert outcome.counters["executions_repaired"] == 1
        assert outcome.counters["executions_resumed"] == 0

    def test_repaired_values_match_full_recompute(self):
        # the repaired v2 fixpoint must be bit-identical to what a cold
        # service computes for v2 from scratch
        outcome = self._bump_outcome()
        repaired = outcome.responses[1]
        assert repaired.detail == "repaired"

        spec = single_spec(num_requests=1, version_bumps=(0.5,))
        cold = ServingService(ServeConfig(freshness_ttl=100.0)).serve(
            [self._request(0, 1.0)], spec, seed=5
        )
        reference = cold.responses[0]
        assert reference.graph_version == 2
        assert reference.detail == "computed"
        assert repaired.values == reference.values

    def test_repair_is_cheaper_than_full_run(self):
        # the repair profile is priced by repair ops, which must come in
        # under the measured cold-run duration for a small delta
        outcome = self._bump_outcome()
        profiles = {key[-1]: p for key, p in outcome.profiles.items()}
        assert profiles.keys() == {"full", "repair"}
        assert profiles["repair"].repaired
        assert profiles["repair"].duration < profiles["full"].duration

    def test_unmaintainable_program_recomputes(self):
        # pagerank is RA322 (iterated): a version bump must fall back to
        # a second full execution, never a repair
        outcome = self._bump_outcome(program="pagerank")
        second = outcome.responses[1]
        assert second.status == OK and second.graph_version == 2
        assert second.detail == "computed"
        assert outcome.counters["executions_full"] == 2
        assert outcome.counters["executions_repaired"] == 0

    def test_repair_counted_in_report_engine_runs(self):
        outcome = self._bump_outcome()
        spec = single_spec(num_requests=2, version_bumps=(0.5,))
        report = build_report(outcome, spec, ServeConfig(freshness_ttl=100.0))
        assert report["engine_runs"]["repaired"] == 1
        assert report["engine_runs"]["distinct"] == 1


class TestStaticPricing:
    """Deadline pricing from the abstract cost estimates (schema 3)."""

    @staticmethod
    def _request(id, arrival, engine="sync", deadline=None):
        return Request(
            id=id,
            tenant="solo",
            program="sssp",
            engine=engine,
            arrival=arrival,
            deadline=arrival + 6.0 if deadline is None else deadline,
        )

    def test_consulted_estimates_land_in_the_outcome(self):
        spec = single_spec(num_requests=2)
        config = ServeConfig()
        outcome = ServingService(config).run(spec, seed=5)
        assert "sssp@v1" in outcome.static_costs
        entry = outcome.static_costs["sssp@v1"]
        model = config.cost_model
        expected = (
            model.job_overhead
            + entry["supersteps"] * model.barrier_cost
            + entry["work"] * model.tuple_cost / config.workers
        )
        assert entry["est_seconds"] == pytest.approx(expected)
        assert entry["recommended_backend"] == "sparse"

    def test_deadline_skip_prices_statically_before_any_profile(self):
        from repro.distributed.cluster import CostModel

        # barriers priced absurdly high: the static prediction blows
        # every deadline.  Request 0 has no fallback, so it runs anyway
        # (measured time is engine-simulated, not predicted); request 1
        # -- a different engine, hence no measured profile -- degrades
        # to the stale entry on the static basis without running
        spec = single_spec(
            num_requests=2, engine_mix=(("sync", 0.5), ("async", 0.5))
        )
        config = ServeConfig(
            freshness_ttl=0.0,
            cost_model=CostModel().with_overrides(barrier_cost=50.0),
        )
        requests = [
            self._request(0, 0.0),
            self._request(1, 1.0, engine="async", deadline=1.5),
        ]
        outcome = ServingService(config).serve(requests, spec, seed=5)
        first, second = outcome.responses
        assert first.status == OK
        assert second.status == OK_STALE
        assert second.detail == "deadline-skip-static"
        assert outcome.counters["executions_full"] == 1

    def test_report_exposes_pricing_and_estimates(self):
        spec = single_spec(num_requests=4)
        config = ServeConfig()
        report = build_report(
            ServingService(config).run(spec, seed=5), spec, config
        )
        assert report["schema"] == 3
        pricing = report["config"]["cost_model"]
        assert pricing["tuple_cost"] == config.cost_model.tuple_cost
        assert pricing["barrier_cost"] == config.cost_model.barrier_cost
        assert "sssp@v1" in report["static_costs"]


class TestReport:
    def test_report_bytes_are_deterministic(self):
        spec = WorkloadSpec(num_requests=30)
        config = ServeConfig()
        first = build_report(ServingService(config).run(spec, seed=9), spec, config)
        second = build_report(ServingService(config).run(spec, seed=9), spec, config)
        assert report_to_json(first) == report_to_json(second)

    def test_report_is_valid_sorted_json(self):
        spec = WorkloadSpec(num_requests=20)
        config = ServeConfig()
        report = build_report(ServingService(config).run(spec, seed=9), spec, config)
        payload = report_to_json(report)
        parsed = json.loads(payload)
        assert parsed["status_counts"].keys() == set(TERMINAL_STATUSES)
        assert payload == json.dumps(parsed, sort_keys=True, indent=2) + "\n"

    def test_status_counts_cover_all_requests(self):
        spec = WorkloadSpec(num_requests=25)
        config = ServeConfig()
        chaos = default_chaos()
        report = build_report(
            ServingService(config, chaos=chaos).run(spec, seed=9),
            spec,
            config,
            chaos=chaos,
        )
        assert sum(report["status_counts"].values()) == 25
        assert report["chaos"] is True

    def test_render_text_mentions_every_status(self):
        spec = WorkloadSpec(num_requests=20)
        config = ServeConfig()
        report = build_report(ServingService(config).run(spec, seed=9), spec, config)
        text = render_text(report)
        for status in TERMINAL_STATUSES:
            assert status in text
