"""Cross-cutting property-based tests over randomly generated inputs.

These exercise the central theorems end-to-end on random instances:

* Theorem 1: MRA evaluation equals naive evaluation on random graphs and
  random (checker-approved) programs;
* Theorem 3: asynchronous execution reaches the synchronous fixpoint for
  any interleaving the simulator produces under random seeds;
* checker soundness: every verdict agrees with a brute-force numeric
  comparison of one naive vs one MRA run.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checker import check_analysis
from repro.datalog import analyze, parse_program
from repro.distributed import AsyncEngine, ClusterConfig, SyncEngine
from repro.engine import Database, MRAEvaluator, NaiveEvaluator, compile_plan
from repro.graphs import rmat

relaxed = settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_weighted_db(seed: int) -> Database:
    graph = rmat(20, 70, seed=seed)
    return graph.as_database(weighted=True)


class TestTheorem1OnRandomPrograms:
    """Randomly parameterised linear programs: MRA must equal naive."""

    @relaxed
    @given(
        seed=st.integers(0, 9999),
        scale_num=st.integers(1, 9),
    )
    def test_random_sum_program(self, seed, scale_num):
        scale = Fraction(scale_num, 100)  # keep the recursion contractive
        source = f"""
        score(X, v) :- X = 0, v = 1.
        score(Y, sum[v1]) :- score(X, v), edge(X, Y, w), v1 = v * {float(scale)} / w,
            {{sum[dv] < 0.0001}}.
        """
        analysis = analyze(parse_program(source, name="random-sum"))
        db = random_weighted_db(seed)
        naive = NaiveEvaluator(analysis, db).run()
        mra = MRAEvaluator(compile_plan(analysis, db)).run()
        for key, value in naive.values.items():
            assert mra.values[key] == pytest.approx(value, abs=1e-3)

    @relaxed
    @given(
        seed=st.integers(0, 9999),
        offset=st.integers(0, 5),
    )
    def test_random_min_program(self, seed, offset):
        source = f"""
        best(X, v) :- X = 0, v = 0.
        best(Y, min[v1]) :- best(X, v), edge(X, Y, w), v1 = v + w + {offset}.
        """
        analysis = analyze(parse_program(source, name="random-min"))
        db = random_weighted_db(seed)
        naive = NaiveEvaluator(analysis, db).run()
        mra = MRAEvaluator(compile_plan(analysis, db)).run()
        assert naive.values == mra.values


class TestCheckerSoundnessEndToEnd:
    """A checker 'yes' must imply naive == MRA on a concrete instance."""

    PROGRAMS = {
        "linear": (
            """
            p(X, v) :- X = 0, v = 1.
            p(Y, sum[v1]) :- p(X, v), edge(X, Y, w), v1 = 0.002 * v * w,
                {sum[dv] < 0.0001}.
            """,
            True,
        ),
        "affine-sum": (
            """
            p(X, v) :- X = 0, v = 1.
            p(Y, sum[v1]) :- p(X, v), edge(X, Y, w), v1 = 0.01 * v + 0.0001 * w,
                {sum[dv] < 0.0001}.
            """,
            False,  # constant part inside F' breaks additivity
        ),
        "monotone-min": (
            """
            p(X, v) :- X = 0, v = 0.
            p(Y, min[v1]) :- p(X, v), edge(X, Y, w), v1 = v + w.
            """,
            True,
        ),
    }

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_verdict(self, name):
        source, expected = self.PROGRAMS[name]
        report = check_analysis(analyze(parse_program(source, name=name)))
        assert report.mra_satisfiable == expected

    @pytest.mark.parametrize(
        "name", [n for n, (_, ok) in PROGRAMS.items() if ok]
    )
    def test_positive_verdicts_hold_numerically(self, name):
        source, _ = self.PROGRAMS[name]
        analysis = analyze(parse_program(source, name=name))
        db = random_weighted_db(77)
        naive = NaiveEvaluator(analysis, db).run()
        mra = MRAEvaluator(compile_plan(analysis, db)).run()
        for key, value in naive.values.items():
            assert mra.values[key] == pytest.approx(value, abs=1e-3)


class TestTheorem3OnRandomSchedules:
    """Different cluster seeds produce different event interleavings; the
    async fixpoint must be identical each time (min) or within epsilon."""

    @relaxed
    @given(cluster_seed=st.integers(0, 9999))
    def test_sssp_schedule_independence(self, cluster_seed):
        from repro.programs import PROGRAMS

        graph = rmat(30, 120, seed=5)
        plan = PROGRAMS["sssp"].plan(graph)
        reference = MRAEvaluator(plan).run().values
        cluster = ClusterConfig(num_workers=5, seed=cluster_seed)
        result = AsyncEngine(plan, cluster).run()
        assert result.values == reference

    @relaxed
    @given(
        cluster_seed=st.integers(0, 9999),
        workers=st.integers(1, 12),
    )
    def test_worker_count_independence(self, cluster_seed, workers):
        from repro.programs import PROGRAMS

        graph = rmat(30, 120, seed=6)
        plan = PROGRAMS["cc"].plan(graph)
        reference = MRAEvaluator(plan).run().values
        cluster = ClusterConfig(num_workers=workers, seed=cluster_seed)
        sync_result = SyncEngine(plan, cluster).run()
        async_result = AsyncEngine(plan, cluster).run()
        assert sync_result.values == reference
        assert async_result.values == reference
