"""The determinism self-lint (``tools/lint_invariants.py``)."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
TOOL = REPO_ROOT / "tools" / "lint_invariants.py"

sys.path.insert(0, str(TOOL.parent))
from lint_invariants import check_file, main  # noqa: E402

CLEAN = """\
import random

def jitter(rng: random.Random) -> float:
    return rng.random()

def seeded() -> random.Random:
    return random.Random(7)
"""

DIRTY = """\
import random
import time
from datetime import datetime

def stamp():
    return time.time(), datetime.now()

def roll():
    return random.random()

def unseeded():
    return random.Random()
"""


class TestCheckFile:
    def test_clean_file(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text(CLEAN)
        assert check_file(path) == []

    def test_flags_wall_clock_and_global_random(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text(DIRTY)
        violations = check_file(path)
        text = "\n".join(violations)
        assert "time.time" in text
        assert "datetime.now" in text
        assert "random.random" in text
        assert "random.Random()" in text or "Random" in text
        assert len(check_file(path)) >= 4

    def test_seeded_constructor_allowed(self, tmp_path):
        path = tmp_path / "seeded.py"
        path.write_text("import random\nrng = random.Random(x=3)\n")
        assert check_file(path) == []


class TestMain:
    def test_core_tree_is_clean(self):
        # the invariant the tool exists to hold: no wall-clock or
        # unseeded randomness in engine/runtime/distributed
        assert main([]) == 0

    def test_nonzero_on_violation(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text(DIRTY)
        assert main([str(path)]) == 1

    def test_runs_as_a_script(self):
        proc = subprocess.run(
            [sys.executable, str(TOOL)], capture_output=True, text=True, cwd=REPO_ROOT
        )
        assert proc.returncode == 0
        assert "determinism invariants hold" in proc.stdout
