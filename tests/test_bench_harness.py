"""Benchmark harness: runners, formatting, paper-claim bookkeeping."""



from repro.bench import (
    PAPER_FIGURE1,
    PAPER_SPEEDUP_CLAIMS,
    format_grid,
    format_table,
    run_engine_micro,
    run_table1,
    run_table2,
)


class TestFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_missing_cells(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_grid(self):
        cells = {("r1", "c1"): 1.5, ("r1", "c2"): 2.0}
        text = format_grid(cells, ["r1"], ["c1", "c2"], title="T")
        assert text.startswith("T")
        assert "1.50s" in text

    def test_float_rendering(self):
        text = format_table([{"v": 1234.5}, {"v": 3.14159}, {"v": 0.001234}])
        assert "1234" in text and "3.14" in text and "0.001" in text


class TestTable1Runner:
    def test_full_agreement(self):
        report = run_table1()
        assert len(report.rows) == 18
        assert all(row["MRA sat."] == row["paper"] for row in report.rows)
        assert "18/18" in report.text

    def test_scripts_emitted_on_request(self):
        report = run_table1(emit_scripts=True)
        scripts = report.scripts
        assert len(scripts) == 18
        assert "(check-sat)" in scripts["pagerank"]


class TestTable2Runner:
    def test_rows_cover_all_datasets(self):
        report = run_table2()
        assert [row["dataset"] for row in report.rows] == [
            "Flickr", "LiveJournal", "Orkut", "ClueWeb09", "Wiki-link",
            "Arabic-2005",
        ]

    def test_paper_sizes_included(self):
        report = run_table2()
        arabic = report.rows[-1]
        assert arabic["paper E"] == 639_999_458
        assert arabic["repro E"] < arabic["paper E"]


class TestEngineMicroRunner:
    def test_covers_all_twelve_satisfiable_programs(self):
        report = run_engine_micro()
        assert len(report.rows) == 12

    def test_mra_saves_work_on_selective_programs(self):
        from repro.programs import PROGRAMS

        report = run_engine_micro()
        for row in report.rows:
            aggregate = PROGRAMS[row["program"]].analysis().aggregate
            if not aggregate.is_idempotent:
                continue
            # for min/max programs MRA's pruned propagation must not
            # exceed naive evaluation's repeated full joins
            assert row["mra F'"] <= row["naive bindings"], row["program"]


class TestPaperData:
    def test_figure1_winners(self):
        livej_sssp = PAPER_FIGURE1[("sssp", "livej")]
        assert livej_sssp["SociaLite"] < livej_sssp["Myria"]
        livej_pr = PAPER_FIGURE1[("pagerank", "livej")]
        assert livej_pr["Myria"] < livej_pr["SociaLite"]

    def test_speedup_claims_cover_benchmarked_programs(self):
        assert set(PAPER_SPEEDUP_CLAIMS) == {
            "cc", "sssp", "pagerank", "adsorption", "katz", "bp",
        }
        assert all(low < high for low, high in PAPER_SPEEDUP_CLAIMS.values())
