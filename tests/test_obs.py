"""The observability layer: metrics registry, trace events, invariants.

The two contracts under test:

* observability must never perturb a run -- traced and untraced
  executions produce identical values and identical simulated time;
* every ``FaultStats`` increment flows through
  :meth:`FaultInjector.record`, so aggregating the ``fault.*`` trace
  events reproduces ``EvalResult.faults`` *exactly*, not approximately.
"""

import json

import pytest

from repro.distributed import (
    AsyncEngine,
    BufferPolicy,
    ClusterConfig,
    SyncEngine,
    UnifiedEngine,
)
from repro.distributed.chaos import FaultSchedule, WorkerCrash
from repro.engine.result import WorkCounters
from repro.graphs import rmat
from repro.obs import (
    NULL_OBS,
    Observability,
    MetricsRegistry,
    NULL_METRICS,
    TraceRecorder,
    aggregate_fault_events,
    ensure_obs,
    read_jsonl,
)
from repro.programs import PROGRAMS


def _plan(program="sssp", seed=11):
    graph = rmat(60, 260, seed=seed, name="obs-test")
    return PROGRAMS[program].plan(graph)


def _chaotic_cluster(num_workers=4, crashes=True):
    schedule = FaultSchedule(
        crashes=(WorkerCrash(worker=1, at=0.004, restart_after=0.004),)
        if crashes
        else (),
        drop_rate=0.05,
        duplicate_rate=0.03,
        reorder_jitter=1e-4,
        seed=13,
    )
    return ClusterConfig(num_workers=num_workers).with_faults(schedule)


class TestMetricsRegistry:
    def test_counters_with_labels(self):
        metrics = MetricsRegistry()
        metrics.inc("flushes", worker=0)
        metrics.inc("flushes", worker=0)
        metrics.inc("flushes", n=3, worker=1)
        assert metrics.counter_value("flushes", worker=0) == 2
        assert metrics.counter_value("flushes", worker=1) == 3
        assert metrics.counter_total("flushes") == 5
        assert metrics.counter_value("missing") == 0

    def test_gauge_keeps_series(self):
        metrics = MetricsRegistry()
        metrics.gauge("beta", 64.0, t=0.0, worker=1, target=2)
        metrics.gauge("beta", 32.0, t=1.0, worker=1, target=2)
        series = list(metrics.gauge_series("beta"))
        assert len(series) == 1
        labels, points = series[0]
        assert dict(labels) == {"worker": 1, "target": 2}
        assert points == [(0.0, 64.0), (1.0, 32.0)]

    def test_gauge_without_series(self):
        metrics = MetricsRegistry(keep_series=False)
        metrics.gauge("beta", 64.0, t=0.0)
        metrics.gauge("beta", 32.0, t=1.0)
        assert list(metrics.gauge_series("beta")) == []
        assert metrics.snapshot()["gauges"]["beta"] == 32.0

    def test_histogram_stats(self):
        metrics = MetricsRegistry()
        for value in (1, 2, 3, 1000):
            metrics.observe("sizes", value)
        stats = metrics.snapshot()["histograms"]["sizes"]
        assert stats["count"] == 4
        assert stats["min"] == 1 and stats["max"] == 1000
        assert stats["mean"] == pytest.approx(1006 / 4)

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", worker=0)
        b.inc("c", worker=0)
        b.inc("c", worker=1)
        a.observe("h", 1)
        b.observe("h", 3)
        b.gauge("g", 5.0, t=2.0)
        a.merge(b)
        assert a.counter_value("c", worker=0) == 2
        assert a.counter_value("c", worker=1) == 1
        assert a.snapshot()["histograms"]["h"]["count"] == 2
        assert a.snapshot()["gauges"]["g"] == 5.0

    def test_absorb_work_counters(self):
        metrics = MetricsRegistry()
        counters = WorkCounters(iterations=4, updates=9, messages=2)
        metrics.absorb_work_counters(counters, engine="test")
        assert metrics.counter_value("work.updates", engine="test") == 9
        assert metrics.counter_value("work.iterations", engine="test") == 4
        # zero fields are not materialised
        assert metrics.counter_total("work.barriers") == 0

    def test_disabled_registry_is_inert(self):
        assert not NULL_METRICS.enabled
        NULL_METRICS.inc("x")
        NULL_METRICS.gauge("x", 1.0)
        NULL_METRICS.observe("x", 1.0)
        NULL_METRICS.absorb_work_counters(WorkCounters(updates=5))
        assert NULL_METRICS.counters == {}
        assert NULL_METRICS.gauges == {}
        assert NULL_METRICS.histograms == {}


class TestTraceRecorder:
    def test_emit_and_counts(self):
        trace = TraceRecorder()
        trace.emit("engine.epoch", t=1.0, round=1)
        trace.emit("engine.epoch", t=2.0, round=2)
        trace.emit("buffer.flush", t=2.5, size=10)
        assert len(trace) == 3
        assert trace.counts_by_kind() == {"engine.epoch": 2, "buffer.flush": 1}
        assert [e["round"] for e in trace.of_kind("engine.epoch")] == [1, 2]

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path=str(path)) as trace:
            trace.emit("a", t=0.5, n=1)
            trace.emit("b", payload={"x": 1}, weird=object())
        events = read_jsonl(str(path))
        assert len(events) == 2
        assert events[0] == {"kind": "a", "t": 0.5, "n": 1}
        assert events[1]["payload"] == {"x": 1}
        assert isinstance(events[1]["weird"], str)  # stringified fallback
        # every line is standalone JSON
        with open(path) as handle:
            for line in handle:
                json.loads(line)

    def test_disabled_recorder_is_inert(self, tmp_path):
        trace = TraceRecorder(path=str(tmp_path / "no.jsonl"), enabled=False)
        trace.emit("a")
        trace.close()
        assert len(trace) == 0
        assert not (tmp_path / "no.jsonl").exists()

    def test_aggregate_fault_events(self):
        events = [
            {"kind": "fault.crashes", "t": 1.0, "n": 1},
            {"kind": "fault.dropped_messages", "n": 1},
            {"kind": "fault.dropped_messages", "n": 1},
            {"kind": "fault.replayed_tuples", "n": 17},
            {"kind": "engine.epoch", "round": 1},  # non-fault: ignored
        ]
        counts = aggregate_fault_events(events)
        assert counts["crashes"] == 1
        assert counts["dropped_messages"] == 2
        assert counts["replayed_tuples"] == 17
        # zeroed template covers every FaultStats field
        assert counts["rollbacks"] == 0 and "checkpoints" in counts


class TestObservabilityHandle:
    def test_ensure_obs(self):
        assert ensure_obs(None) is NULL_OBS
        obs = Observability()
        assert ensure_obs(obs) is obs

    def test_disabled_uses_null_instruments(self):
        obs = Observability.disabled()
        assert not obs.enabled
        assert obs.metrics is NULL_METRICS
        obs.trace.emit("x")
        assert len(obs.trace) == 0

    def test_context_manager_closes_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Observability(trace_path=str(path)) as obs:
            obs.trace.emit("a")
        assert read_jsonl(str(path)) == [{"kind": "a", "t": None}]


class TestEngineInstrumentation:
    def test_single_node_epoch_events_and_metrics(self):
        from repro.engine import MRAEvaluator

        obs = Observability()
        result = MRAEvaluator(_plan(), obs=obs).run()
        epochs = obs.trace.of_kind("engine.epoch")
        assert len(epochs) == result.counters.iterations
        assert epochs[-1]["changed"] == 0  # the fixpoint round
        assert result.metrics is obs.metrics
        assert (
            result.metrics.counter_value("work.updates", engine="mra")
            == result.counters.updates
        )

    def test_sync_superstep_events_match_rounds(self):
        obs = Observability()
        result = SyncEngine(_plan(), ClusterConfig(num_workers=4), obs=obs).run()
        supersteps = obs.trace.of_kind("engine.superstep")
        assert len(supersteps) == result.counters.iterations
        assert [e["round"] for e in supersteps] == list(
            range(1, len(supersteps) + 1)
        )
        # simulated time is monotone along the trace
        times = [e["t"] for e in supersteps]
        assert times == sorted(times)

    def test_unified_emits_beta_adaptations(self):
        obs = Observability()
        result = UnifiedEngine(_plan(), ClusterConfig(num_workers=4), obs=obs).run()
        betas = obs.trace.of_kind("buffer.beta")
        assert betas, "adaptive buffers should adapt at least once"
        for event in betas:
            assert event["old"] != event["new"]
        assert result.metrics.counter_total("buffer.adaptations") == len(betas)
        series = list(result.metrics.gauge_series("buffer.beta"))
        assert sum(len(points) for _, points in series) == len(betas)

    def test_flush_events_match_message_counters(self):
        obs = Observability()
        result = AsyncEngine(
            _plan(),
            ClusterConfig(num_workers=4),
            buffer_policy=BufferPolicy(initial_beta=16, adaptive=False),
            obs=obs,
        ).run()
        flushes = obs.trace.of_kind("buffer.flush")
        assert len(flushes) == result.counters.messages
        assert sum(e["size"] for e in flushes) == result.counters.message_tuples

    def test_observability_does_not_perturb_async_run(self):
        plain = AsyncEngine(_plan(), ClusterConfig(num_workers=4)).run()
        obs = Observability()
        traced = AsyncEngine(_plan(), ClusterConfig(num_workers=4), obs=obs).run()
        assert traced.values == plain.values
        assert traced.simulated_seconds == plain.simulated_seconds
        assert traced.counters.snapshot() == plain.counters.snapshot()

    def test_observability_does_not_perturb_chaotic_run(self):
        plain = SyncEngine(_plan(), _chaotic_cluster()).run()
        traced = SyncEngine(_plan(), _chaotic_cluster(), obs=Observability()).run()
        assert traced.values == plain.values
        assert traced.simulated_seconds == plain.simulated_seconds
        assert traced.faults.snapshot() == plain.faults.snapshot()


@pytest.mark.chaos
class TestFaultEventInvariant:
    """fault.* trace events aggregate to EvalResult.faults, exactly."""

    def _check(self, engine_factory):
        obs = Observability()
        result = engine_factory(obs).run()
        assert result.faults is not None
        observed = aggregate_fault_events(obs.trace.events)
        assert observed == result.faults.snapshot()
        # the schedule actually injected something
        assert sum(observed.values()) > 0

    def test_sync_engine(self):
        self._check(
            lambda obs: SyncEngine(_plan(), _chaotic_cluster(), obs=obs)
        )

    def test_async_engine(self):
        self._check(
            lambda obs: AsyncEngine(
                _plan(),
                _chaotic_cluster(),
                buffer_policy=BufferPolicy(initial_beta=16, adaptive=False),
                obs=obs,
            )
        )

    def test_unified_engine_additive_rollback(self):
        plan = _plan("pagerank")
        self._check(
            lambda obs: UnifiedEngine(plan, _chaotic_cluster(), obs=obs)
        )

    def test_async_no_crashes(self):
        self._check(
            lambda obs: AsyncEngine(
                _plan(),
                _chaotic_cluster(crashes=False),
                buffer_policy=BufferPolicy(initial_beta=16, adaptive=False),
                obs=obs,
            )
        )


class TestCli:
    def test_trace_smoke(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.jsonl"
        assert (
            main(["trace", "sssp", "--chaos", "--workers", "3", "--out", str(path)])
            == 0
        )
        out = capsys.readouterr().out
        assert "trace events" in out
        assert "fault events agree with EvalResult.faults" in out
        assert read_jsonl(str(path))

    def test_metrics_smoke(self, capsys):
        from repro.cli import main

        assert main(["metrics", "sssp", "--workers", "3"]) == 0
        out = capsys.readouterr().out
        assert "counters (summed over labels):" in out
        assert "work.updates" in out
        assert "beta(" in out
