"""Property suite for :mod:`repro.analysis.absint`.

The soundness contract of the abstract interpreter: the static bound
must *dominate* the concrete fixpoint.  Whatever values any kernel
backend computes, every one of them lies inside the proven interval
(or under the proven magnitude for non-numeric carriers), with no
runtime saturation or clamping involved.  The suite checks that
contract over every registry program on its default graph, and -- via
hypothesis -- over seeded random graphs the analyzer has never seen.

The cost domain is pinned the same way: the recommended backend must
match the BENCH_kernels dense/sparse crossover, and ``--backend auto``
must be bit-identical to the explicit choice it resolves to.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.absint import (
    FLOAT64_EXACT_LIMIT,
    analyze_plan_range,
    analyze_symbolic_range,
    counting_walk_bound,
    estimate_plan_cost,
    record_cost_metrics,
    summarize_plan,
)
from repro.bench.kernels import DENSE_PROGRAMS, SPARSE_PROGRAMS
from repro.datalog import analyze, parse_program
from repro.distributed.chaos_harness import default_graph
from repro.engine import MRAEvaluator
from repro.graphs.generators import random_dag, rmat
from repro.obs.metrics import MetricsRegistry
from repro.programs import PROGRAMS
from repro.runtime import (
    HAVE_NUMPY,
    KERNELS,
    auto_backend_for_plan,
    resolve_backend_for_plan,
)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def plan_for(name, seed=7):
    return PROGRAMS[name].plan(default_graph(name, seed=seed))


def backends_for(plan):
    """python always; numpy wherever its carrier assumptions hold."""
    out = ["python"]
    if HAVE_NUMPY and KERNELS["numpy"].supports_plan(plan):
        out.append("numpy")
    return out


def assert_dominates(plan, verdict, values, tag):
    """Every concrete value lies inside the abstract certificate."""
    if not verdict.bounded:
        return
    semiring = plan.analysis.aggregate.semiring
    if verdict.magnitude_only:
        for key, value in values.items():
            mag = float(semiring.value_magnitude(value))
            assert mag <= verdict.magnitude, (tag, key, mag, verdict.magnitude)
    else:
        for key, value in values.items():
            concrete = float(value)
            assert verdict.lo <= concrete <= verdict.hi, (
                tag,
                key,
                concrete,
                (verdict.lo, verdict.hi),
            )


class TestBoundDominatesRegistry:
    """The certificate holds for all 18 programs on both backends."""

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_bound_dominates_concrete_fixpoint(self, name):
        plan = plan_for(name)
        verdict = analyze_plan_range(plan)
        # the registry ships no overflow: the gate in CI relies on it
        assert verdict.code in ("RA350", "RA352"), (name, verdict.detail)
        for backend in backends_for(plan):
            values = MRAEvaluator(plan, backend=backend).run().values
            assert_dominates(plan, verdict, values, (name, backend))

    @pytest.mark.parametrize("name", ["sssp", "cc", "path_count", "dag_paths"])
    def test_known_bounded_programs_certify_ra350(self, name):
        verdict = analyze_plan_range(plan_for(name))
        assert verdict.code == "RA350", (name, verdict.detail)
        assert verdict.bounded and verdict.float64_exact
        assert verdict.magnitude < FLOAT64_EXACT_LIMIT

    def test_verdict_serialises_the_bound(self):
        verdict = analyze_plan_range(plan_for("sssp"))
        payload = verdict.to_dict()
        assert payload["bound"] == [verdict.lo, verdict.hi]
        assert payload["code"] == "RA350"
        assert payload["float64_exact"] is True


class TestBoundDominatesRandomGraphs:
    """Hypothesis: dominance on graphs the analyzer has never seen."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(8, 48),
        m=st.integers(8, 120),
    )
    def test_additive_dag_counting(self, seed, n, m):
        graph = random_dag(n, max(n, m), seed=seed)
        plan = PROGRAMS["dag_paths"].plan(graph)
        verdict = analyze_plan_range(plan)
        for backend in backends_for(plan):
            values = MRAEvaluator(plan, backend=backend).run().values
            assert_dominates(plan, verdict, values, ("dag_paths", seed, backend))

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(8, 48),
        m=st.integers(8, 160),
    )
    def test_selective_shortest_paths(self, seed, n, m):
        graph = rmat(n, max(n, m), seed=seed)
        plan = PROGRAMS["sssp"].plan(graph)
        verdict = analyze_plan_range(plan)
        assert verdict.code == "RA350", verdict.detail
        for backend in backends_for(plan):
            values = MRAEvaluator(plan, backend=backend).run().values
            assert_dominates(plan, verdict, values, ("sssp", seed, backend))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_epsilon_terminated_pagerank(self, seed):
        graph = rmat(40, 140, seed=seed)
        plan = PROGRAMS["pagerank"].plan(graph)
        verdict = analyze_plan_range(plan)
        for backend in backends_for(plan):
            values = MRAEvaluator(plan, backend=backend).run().values
            assert_dominates(plan, verdict, values, ("pagerank", seed, backend))


def symbolic_verdict(source, name="probe"):
    return analyze_symbolic_range(analyze(parse_program(source, name=name)))


class TestSymbolicClassification:
    """RA35x from program text alone (the file-based lint path)."""

    def test_multiplicative_growth_is_ra351(self):
        verdict = symbolic_verdict(
            "assume m >= 2.\n"
            "paths(X, c) :- seed(X, c).\n"
            "paths(Y, sum[cy]) :- paths(X, c), edge(X, Y, m), cy = c * m.\n"
        )
        assert verdict.code == "RA351"
        assert not verdict.bounded and verdict.method == "symbolic"

    def test_always_improving_shift_is_ra351(self):
        verdict = symbolic_verdict(
            "best(X, d) :- seed(X, d).\n"
            "best(Y, max[dy]) :- best(X, d), edge(X, Y, w), dy = d + 1.\n"
        )
        assert verdict.code == "RA351"

    def test_shift_against_the_fold_is_inconclusive(self):
        # min-fold with a +w shift only improves while new keys appear:
        # no growth proof without a graph, so the verdict stays open
        verdict = symbolic_verdict(
            "cost(0, d) :- d = 0.\n"
            "cost(Y, min[dy]) :- cost(X, dx), edge(X, Y, w), dy = dx + w.\n"
        )
        assert verdict.code == "RA352"
        assert not verdict.bounded

    def test_assume_domain_can_rescue_the_coefficient(self):
        # the same multiplicative recursion with factors capped below
        # one cannot be proven divergent symbolically
        verdict = symbolic_verdict(
            "assume m <= 0.5.\n"
            "assume m >= 0.\n"
            "mass(X, c) :- seed(X, c).\n"
            "mass(Y, sum[cy]) :- mass(X, c), edge(X, Y, m), cy = c * m.\n"
        )
        assert verdict.code == "RA352"


class TestCountingWalkBound:
    """The builder-facing exact walk-count certificate."""

    def test_exact_on_a_diamond(self):
        edges = [(0, 1, 2.0), (1, 2, 3.0), (0, 2, 1.0)]
        # walks into 2: 0->2 (x1) plus 0->1->2 (x2 * x3) = 7
        assert counting_walk_bound(edges) == 7.0

    def test_source_count_is_the_floor(self):
        assert counting_walk_bound([], initial=4.0) == 4.0

    def test_unreachable_edges_do_not_inflate(self):
        assert counting_walk_bound([(5, 6, 100.0)]) == 1.0

    def test_rejects_non_forward_edges(self):
        with pytest.raises(ValueError):
            counting_walk_bound([(1, 0, 1.0)])
        with pytest.raises(ValueError):
            counting_walk_bound([(2, 2, 1.0)])

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(3, 16),
        mult=st.integers(1, 3),
    )
    def test_dominates_every_vertex_count(self, seed, n, mult):
        graph = random_dag(n, 3 * n, seed=seed)
        edges = [(s, d, float(mult)) for s, d in graph.edges if s < d]
        bound = counting_walk_bound(edges)
        # recompute per-vertex counts independently and compare
        counts = {0: 1.0}
        for src, dst, m in sorted(edges):
            if src in counts:
                counts[dst] = counts.get(dst, 0.0) + counts[src] * m
        assert bound == max(counts.values())


class TestCostDomain:
    """The cardinality/frontier domain and its backend recommendation."""

    def test_summary_counts_match_the_plan(self):
        plan = plan_for("sssp")
        summary = summarize_plan(plan)
        assert summary.num_keys == len(plan.keys)
        assert summary.num_edges == sum(
            len(edges) for edges in plan.out_edges.values()
        )
        assert summary.max_out_degree >= 1
        assert 0.0 < summary.peak_frontier_fraction <= 1.0
        assert summary.depth == len(summary.levels)

    def test_selective_frontier_recommends_sparse(self):
        cost = estimate_plan_cost(plan_for("sssp"))
        assert cost.recommended_backend == "sparse"
        assert cost.supersteps >= 1
        assert cost.work > 0

    def test_dense_fixpoint_recommends_numpy(self):
        cost = estimate_plan_cost(plan_for("pagerank"))
        assert cost.recommended_backend == "numpy"
        assert cost.supersteps >= 1

    def test_est_seconds_prices_in_cost_model_currency(self):
        from repro.distributed.cluster import CostModel

        cost = estimate_plan_cost(plan_for("sssp"))
        barrier_only = CostModel().with_overrides(
            tuple_cost=0.0, barrier_cost=1.0, job_overhead=0.0
        )
        assert cost.est_seconds(barrier_only) == float(cost.supersteps)
        work_only = CostModel().with_overrides(
            tuple_cost=1.0, barrier_cost=0.0, job_overhead=0.0
        )
        assert cost.est_seconds(work_only, workers=2) == pytest.approx(
            cost.work / 2
        )

    def test_record_cost_metrics_publishes_gauges(self):
        metrics = MetricsRegistry(enabled=True, keep_series=True)
        record_cost_metrics(metrics, estimate_plan_cost(plan_for("sssp")))
        published = {name for (name, _labels) in metrics.gauges}
        assert {
            "cost_supersteps_est",
            "cost_work_est",
            "cost_peak_frontier_fraction",
            "cost_seconds_est",
        } <= published

    def test_supersteps_track_graph_depth(self):
        from repro.graphs.generators import chain

        shallow = estimate_plan_cost(PROGRAMS["sssp"].plan(chain(5)))
        deep = estimate_plan_cost(PROGRAMS["sssp"].plan(chain(40)))
        assert deep.supersteps > shallow.supersteps


@needs_numpy
class TestAutoBackend:
    """``--backend auto`` follows the static cost estimate, bit-exactly."""

    @pytest.mark.parametrize("name", sorted(DENSE_PROGRAMS + SPARSE_PROGRAMS))
    def test_choice_matches_bench_crossover(self, name):
        want = "sparse" if name in SPARSE_PROGRAMS else "numpy"
        plan = plan_for(name)
        assert auto_backend_for_plan(plan) == want
        assert resolve_backend_for_plan(plan, "auto") == want
        assert estimate_plan_cost(plan).recommended_backend == want

    @pytest.mark.parametrize("name", ["sssp", "pagerank"])
    def test_auto_is_bit_identical_to_explicit(self, name):
        plan = plan_for(name)
        auto_run = MRAEvaluator(plan, backend="auto").run()
        explicit_backend = auto_backend_for_plan(plan)
        explicit = MRAEvaluator(plan, backend=explicit_backend).run()
        assert auto_run.backend == explicit_backend
        assert auto_run.values == explicit.values
        assert auto_run.counters == explicit.counters

    def test_auto_never_reaches_the_kernel_registry(self):
        from repro.runtime import get_kernel

        with pytest.raises(ValueError):
            get_kernel("auto")
