"""Two-level termination control."""

from repro.datalog import analyze, parse_program
from repro.engine import TerminationSpec
from repro.engine.termination import DEFAULT_MAX_ITERATIONS, TerminationTracker


class TestSpec:
    def test_defaults(self):
        spec = TerminationSpec()
        assert spec.epsilon is None
        assert spec.max_iterations == DEFAULT_MAX_ITERATIONS

    def test_from_analysis_with_clause(self, pagerank_source):
        analysis = analyze(parse_program(pagerank_source))
        spec = TerminationSpec.from_analysis(analysis)
        assert spec.epsilon == 1e-4
        assert spec.comparison == "<"

    def test_from_analysis_without_clause(self, sssp_source):
        analysis = analyze(parse_program(sssp_source))
        spec = TerminationSpec.from_analysis(analysis)
        assert spec.epsilon is None

    def test_epsilon_met_strict(self):
        spec = TerminationSpec(epsilon=0.1, comparison="<")
        assert spec.epsilon_met(0.05)
        assert not spec.epsilon_met(0.1)

    def test_epsilon_met_inclusive(self):
        spec = TerminationSpec(epsilon=0.1, comparison="<=")
        assert spec.epsilon_met(0.1)

    def test_no_epsilon_never_met(self):
        assert not TerminationSpec().epsilon_met(0.0)


class TestTracker:
    def test_continues_while_changing(self):
        tracker = TerminationTracker(TerminationSpec())
        tracker.record(changed_keys=5, total_delta=1.0)
        assert tracker.stop_reason() is None

    def test_fixpoint(self):
        tracker = TerminationTracker(TerminationSpec())
        tracker.record(changed_keys=0, total_delta=0.0)
        assert tracker.stop_reason() == "fixpoint"

    def test_epsilon(self):
        tracker = TerminationTracker(TerminationSpec(epsilon=0.5))
        tracker.record(changed_keys=10, total_delta=0.4)
        assert tracker.stop_reason() == "epsilon"

    def test_iteration_limit(self):
        tracker = TerminationTracker(TerminationSpec(max_iterations=2))
        tracker.record(changed_keys=1, total_delta=9.0)
        assert tracker.stop_reason() is None
        tracker.record(changed_keys=1, total_delta=9.0)
        assert tracker.stop_reason() == "iteration-limit"

    def test_fixpoint_takes_precedence(self):
        tracker = TerminationTracker(TerminationSpec(epsilon=1.0, max_iterations=1))
        tracker.record(changed_keys=0, total_delta=0.0)
        assert tracker.stop_reason() == "fixpoint"
