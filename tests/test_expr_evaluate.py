"""Evaluation and compilation of expressions."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.expr import Call, EvalError, compile_fn, const, evaluate, var

rationals = st.fractions(
    min_value=-100, max_value=100, max_denominator=64
)


class TestEvaluate:
    def test_arithmetic(self):
        expr = (var("x") + 2) * var("y") - 1
        assert evaluate(expr, {"x": 3, "y": 4}) == 19

    def test_exact_fractions(self):
        expr = const(0.85) * var("x") / var("d")
        result = evaluate(expr, {"x": Fraction(1), "d": Fraction(2)})
        assert result == Fraction(17, 40)

    def test_division_by_zero(self):
        with pytest.raises(EvalError):
            evaluate(var("x") / var("y"), {"x": 1, "y": 0})

    def test_unbound_variable(self):
        with pytest.raises(EvalError, match="unbound"):
            evaluate(var("x") + 1, {})

    def test_negation(self):
        assert evaluate(-var("x"), {"x": 5}) == -5

    def test_relu_positive(self):
        assert evaluate(Call("relu", (var("x"),)), {"x": 3}) == 3

    def test_relu_negative(self):
        assert evaluate(Call("relu", (var("x"),)), {"x": -3}) == 0

    def test_relu_preserves_fraction_type(self):
        result = evaluate(Call("relu", (var("x"),)), {"x": Fraction(-1, 2)})
        assert result == 0 and isinstance(result, Fraction)

    def test_tanh(self):
        result = evaluate(Call("tanh", (var("x"),)), {"x": 1.0})
        assert result == pytest.approx(math.tanh(1.0))

    def test_abs(self):
        assert evaluate(Call("abs", (var("x"),)), {"x": -7}) == 7


class TestCompileFn:
    def test_matches_interpreter(self):
        expr = const(0.85) * var("x") / var("d")
        fn = compile_fn(expr, ("x", "d"))
        assert fn(1.0, 2.0) == pytest.approx(0.425)

    def test_positional_argument_order(self):
        expr = var("a") - var("b")
        fn = compile_fn(expr, ("a", "b"))
        assert fn(10, 3) == 7
        fn_reversed = compile_fn(expr, ("b", "a"))
        assert fn_reversed(10, 3) == -7

    def test_rejects_unbound_arguments(self):
        with pytest.raises(EvalError, match="unbound"):
            compile_fn(var("x") + var("y"), ("x",))

    def test_call_compilation(self):
        expr = Call("relu", (var("g") * var("p"),)) * var("w")
        fn = compile_fn(expr, ("g", "p", "w"))
        assert fn(-1.0, 2.0, 3.0) == 0.0
        assert fn(1.0, 2.0, 3.0) == 6.0

    def test_integer_constants_stay_integer(self):
        fn = compile_fn(var("x") + const(1), ("x",))
        assert fn(2) == 3 and isinstance(fn(2), int)

    @given(x=rationals, y=rationals)
    def test_compiled_agrees_with_interpreter(self, x, y):
        expr = (var("x") * 3 - var("y")) * (var("x") + 1)
        fn = compile_fn(expr, ("x", "y"))
        assert fn(x, y) == evaluate(expr, {"x": x, "y": y})


class TestEvaluateProperties:
    @given(x=rationals)
    def test_relu_idempotent(self, x):
        relu = Call("relu", (var("x"),))
        once = evaluate(relu, {"x": x})
        twice = evaluate(relu, {"x": once})
        assert once == twice

    @given(x=rationals, y=rationals)
    def test_addition_commutes(self, x, y):
        left = evaluate(var("x") + var("y"), {"x": x, "y": y})
        right = evaluate(var("y") + var("x"), {"x": x, "y": y})
        assert left == right
