"""Checker report objects and system-run metadata."""


from repro.checker import CheckReport, PropertyResult, Status, check_analysis
from repro.systems.base import SystemRun


def make_result(status: Status, name: str = "property2") -> PropertyResult:
    return PropertyResult(
        property_name=name, status=status, method="test", detail="d"
    )


class TestPropertyResult:
    def test_holds_only_when_proved(self):
        assert make_result(Status.PROVED).holds
        assert not make_result(Status.REFUTED).holds
        assert not make_result(Status.UNKNOWN).holds


class TestCheckReport:
    def _report(self, p1: Status, p2: Status, decomposable: bool = True):
        return CheckReport(
            program_name="p",
            aggregate_name="sum",
            fprime_repr="f",
            recursion_var="x",
            property1=make_result(p1, "property1"),
            property2=make_result(p2),
            decomposable=decomposable,
        )

    def test_satisfiable_requires_both_properties(self):
        assert self._report(Status.PROVED, Status.PROVED).mra_satisfiable
        assert not self._report(Status.PROVED, Status.REFUTED).mra_satisfiable
        assert not self._report(Status.REFUTED, Status.PROVED).mra_satisfiable
        assert not self._report(Status.PROVED, Status.UNKNOWN).mra_satisfiable

    def test_decomposability_required(self):
        assert not self._report(
            Status.PROVED, Status.PROVED, decomposable=False
        ).mra_satisfiable

    def test_summary_mentions_verdict_and_method(self):
        summary = self._report(Status.PROVED, Status.PROVED).summary()
        assert "yes" in summary and "test" in summary

    def test_table_row(self):
        row = self._report(Status.PROVED, Status.REFUTED).table_row()
        assert row == {"program": "p", "mra_sat": "no", "aggregator": "sum"}


class TestMultiBodyCheck:
    def test_failing_secondary_body_rejects_program(self):
        """Property 2 must hold for *every* recursive body."""
        from repro.datalog import analyze, parse_program

        source = """
        p(X, v) :- X = 0, v = 1.
        p(Y, sum[v1]) :- p(X, v), edge(X, Y, w), v1 = 0.1 * v;
            :- p(Z, v), other(Z, Y), v1 = relu(v), {sum[dv] < 0.001}.
        """
        report = check_analysis(analyze(parse_program(source, name="mixed")))
        assert not report.mra_satisfiable
        assert report.property2.status is Status.REFUTED

    def test_all_bodies_passing_accepts(self):
        from repro.datalog import analyze, parse_program

        source = """
        p(X, v) :- X = 0, v = 1.
        p(Y, sum[v1]) :- p(X, v), edge(X, Y, w), v1 = 0.1 * v;
            :- p(Z, v), other(Z, Y), v1 = 0.2 * v, {sum[dv] < 0.001}.
        """
        report = check_analysis(analyze(parse_program(source, name="mixed-ok")))
        assert report.mra_satisfiable


class TestSystemRun:
    def test_seconds_fallback(self):
        from repro.engine.result import EvalResult

        run = SystemRun(
            "S", "p", "d", EvalResult(values={}, stop_reason="fixpoint")
        )
        assert run.seconds == 0.0
