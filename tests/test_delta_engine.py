"""Unit tests for ``repro.delta``: batch validation, versioned views,
plan diffing, strategy selection and frontier seeding.

The oracle comparisons live in ``tests/test_delta_equivalence.py``;
this suite pins the *mechanics* -- which malformed batches are refused,
what a view remembers, which repair strategy a given (mode, diff) pair
selects, and that the insert-only fast path really seeds a small
frontier instead of resetting state.
"""

import json

import pytest

from repro.delta import (
    DEFAULT_WEIGHT,
    DeltaValidationError,
    GraphDelta,
    IncrementalEngine,
    MutableGraphView,
    PlanDiff,
    STRATEGIES,
    choose_strategy,
    diff_plans,
    plan_signature,
    random_delta,
    repair_plan,
    view_of,
)
from repro.graphs import random_dag, rmat
from repro.programs import PROGRAMS


@pytest.fixture
def graph():
    return rmat(24, 60, seed=5)


@pytest.fixture
def dag():
    return random_dag(20, 50, seed=5)


class TestGraphDeltaValidation:
    def test_empty_delta(self, graph):
        delta = GraphDelta()
        assert delta.is_empty and delta.is_insert_only
        delta.validate(graph)
        assert delta.apply_to(graph).edges == graph.edges

    def test_duplicate_insert_in_batch_rejected(self, graph):
        src, dst = self._missing_edge(graph)
        delta = GraphDelta(insert_edges=((src, dst, 1), (src, dst, 2)))
        with pytest.raises(DeltaValidationError, match="listed twice"):
            delta.validate(graph)

    def test_insert_of_existing_edge_rejected(self, graph):
        src, dst = graph.edges[0]
        with pytest.raises(DeltaValidationError, match="already exists"):
            GraphDelta(insert_edges=((src, dst, 1),)).validate(graph)

    def test_insert_after_delete_of_same_edge_allowed(self, graph):
        src, dst = graph.edges[0]
        delta = GraphDelta(
            insert_edges=((src, dst, 3),), delete_edges=((src, dst),)
        )
        delta.validate(graph)
        mutated = delta.apply_to(graph)
        assert mutated.weights[mutated.edges.index((src, dst))] == 3

    def test_out_of_range_insert_rejected(self, graph):
        n = graph.num_vertices
        with pytest.raises(DeltaValidationError, match="out of range"):
            GraphDelta(insert_edges=((0, n, 1),)).validate(graph)
        # ...but an added vertex extends the range
        GraphDelta(insert_edges=((0, n, 1),), add_vertices=1).validate(graph)

    def test_self_loop_policy(self, graph):
        delta = GraphDelta(insert_edges=((3, 3, 1),))
        with pytest.raises(DeltaValidationError, match="self loop"):
            delta.validate(graph)
        GraphDelta(insert_edges=((3, 3, 1),), allow_self_loops=True).validate(
            graph
        )

    def test_dangling_delete_rejected(self, graph):
        src, dst = self._missing_edge(graph)
        with pytest.raises(DeltaValidationError, match="dangling"):
            GraphDelta(delete_edges=((src, dst),)).validate(graph)

    def test_duplicate_delete_rejected(self, graph):
        pair = graph.edges[0]
        with pytest.raises(DeltaValidationError, match="listed twice"):
            GraphDelta(delete_edges=(pair, pair)).validate(graph)

    def test_update_of_missing_edge_rejected(self, graph):
        src, dst = self._missing_edge(graph)
        with pytest.raises(DeltaValidationError, match="does not exist"):
            GraphDelta(update_weights=((src, dst, 2.0),)).validate(graph)

    def test_update_of_deleted_edge_rejected(self, graph):
        src, dst = graph.edges[0]
        delta = GraphDelta(
            delete_edges=((src, dst),), update_weights=((src, dst, 2.0),)
        )
        with pytest.raises(DeltaValidationError, match="also deleted"):
            delta.validate(graph)

    def test_remove_vertex_out_of_range_rejected(self, graph):
        delta = GraphDelta(remove_vertices=(graph.num_vertices,))
        with pytest.raises(DeltaValidationError, match="not in the graph"):
            delta.validate(graph)

    def test_insert_touching_removed_vertex_rejected(self, graph):
        victim = graph.edges[0][0]
        fresh = graph.num_vertices  # guaranteed-new vertex, so only the
        delta = GraphDelta(         # removed-vertex check can fire
            insert_edges=((fresh, victim, 1),),
            add_vertices=1,
            remove_vertices=(victim,),
        )
        with pytest.raises(DeltaValidationError, match="removed"):
            delta.validate(graph)

    def test_negative_add_vertices_rejected(self, graph):
        with pytest.raises(DeltaValidationError, match="non-negative"):
            GraphDelta(add_vertices=-1).validate(graph)

    @staticmethod
    def _missing_edge(graph):
        existing = set(graph.edges)
        for src in range(graph.num_vertices):
            for dst in range(graph.num_vertices):
                if src != dst and (src, dst) not in existing:
                    return src, dst
        raise AssertionError("graph is complete")


class TestGraphDeltaApply:
    def test_tombstone_semantics(self, graph):
        victim = graph.edges[0][0]
        mutated = GraphDelta(remove_vertices=(victim,)).apply_to(graph)
        # the id slot survives; only incident edges disappear
        assert mutated.num_vertices == graph.num_vertices
        assert all(victim not in pair for pair in mutated.edges)
        survivors = [pair for pair in graph.edges if victim not in pair]
        assert mutated.edges == survivors

    def test_insert_default_weight(self, graph):
        src, dst = TestGraphDeltaValidation._missing_edge(graph)
        mutated = GraphDelta(insert_edges=((src, dst),)).apply_to(graph)
        assert mutated.edges[-1] == (src, dst)
        assert mutated.weights[-1] == DEFAULT_WEIGHT

    def test_base_weights_pinned_before_mutation(self, graph):
        # weights derive from (edge list, seed): applying a delta to an
        # unweighted graph must pin the ORIGINAL weights first, never
        # re-roll them from the mutated edge list
        assert graph.weights is None
        original = graph.with_weights().weights
        src, dst = TestGraphDeltaValidation._missing_edge(graph)
        mutated = GraphDelta(insert_edges=((src, dst, 4),)).apply_to(graph)
        assert list(mutated.weights[:-1]) == list(original)

    def test_apply_does_not_mutate_base(self, graph):
        edges_before = list(graph.edges)
        GraphDelta(delete_edges=(graph.edges[0],)).apply_to(graph)
        assert graph.edges == edges_before

    def test_json_round_trip(self, graph):
        delta = random_delta(graph, seed=2, insert_edges=3, delete_edges=2)
        clone = GraphDelta.from_json(delta.to_json())
        assert clone == delta

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(DeltaValidationError, match="unknown delta fields"):
            GraphDelta.from_dict({"inserts": []})

    def test_random_delta_is_deterministic_and_applicable(self, graph):
        first = random_delta(
            graph, seed=9, insert_edges=5, delete_edges=3, update_weights=2
        )
        second = random_delta(
            graph, seed=9, insert_edges=5, delete_edges=3, update_weights=2
        )
        assert first == second
        first.validate(graph)
        assert len(first.insert_edges) == 5

    def test_random_delta_acyclic_inserts(self, dag):
        delta = random_delta(dag, seed=4, insert_edges=10, acyclic=True)
        assert all(src < dst for src, dst, _ in delta.insert_edges)


class TestMutableGraphView:
    def test_versioning(self, graph):
        view = view_of(graph)
        assert view.version == view.base_version == 1
        delta = random_delta(graph, seed=1, insert_edges=2)
        view.apply(delta)
        assert view.version == 2
        assert view.delta_for(2) == delta
        assert view.graph_at(1).edges == view.graph_at(1).edges
        assert len(view.graph.edges) == len(graph.edges) + 2

    def test_invalid_delta_leaves_view_untouched(self, graph):
        view = MutableGraphView(graph)
        bad = GraphDelta(delete_edges=((0, 0),))
        with pytest.raises(DeltaValidationError):
            view.apply(bad)
        assert view.version == 1

    def test_deltas_between(self, graph):
        view = view_of(graph)
        applied = []
        for step in range(3):
            delta = random_delta(view.graph, seed=step, insert_edges=1)
            applied.append(delta)
            view.apply(delta)
        assert view.deltas_between(1, 4) == applied
        assert view.deltas_between(3, 4) == applied[2:]

    def test_advance_to_materialises_lazily(self, graph):
        view = view_of(graph)
        made = []

        def make(view_, version):
            delta = random_delta(view_.graph, seed=version, insert_edges=1)
            made.append(version)
            return delta

        view.advance_to(3, make)
        assert view.version == 3
        assert made == [2, 3]
        view.advance_to(3, make)  # idempotent
        assert made == [2, 3]


class TestPlanDiffAndStrategy:
    def _plans(self, program, graph, delta):
        spec = PROGRAMS[program]
        base = graph.with_weights()
        return spec.plan(base), spec.plan(delta.apply_to(base))

    def test_identical_plans_diff_empty(self, graph):
        spec = PROGRAMS["sssp"]
        plan = spec.plan(graph.with_weights())
        again = spec.plan(graph.with_weights())
        diff = diff_plans(plan, again)
        assert diff.is_empty and diff.is_pure_growth

    def test_insert_only_delta_is_pure_growth(self, graph):
        delta = random_delta(graph, seed=3, insert_edges=4)
        old, new = self._plans("sssp", graph, delta)
        diff = diff_plans(old, new)
        assert diff.is_pure_growth
        assert sum(diff.added.values()) == 4
        assert not diff.removed

    def test_cc_symmetrises_plan_edges(self, graph):
        # cc compiles each graph edge in both directions: one graph
        # insert becomes two plan edges -- exactly why repairs diff
        # compiled plans instead of raw edge lists
        existing = set(graph.edges)
        pair = next(
            (s, d)
            for s in range(graph.num_vertices)
            for d in range(graph.num_vertices)
            if s != d and (s, d) not in existing and (d, s) not in existing
        )
        delta = GraphDelta(insert_edges=(pair,))
        old, new = self._plans("cc", graph, delta)
        diff = diff_plans(old, new)
        assert sum(diff.added.values()) == 2

    def test_cc_reverse_duplicate_insert_is_a_plan_noop(self, graph):
        # inserting (d, s) when (s, d) already exists leaves cc's
        # symmetric plan unchanged -- the diff must see that
        src, dst = next(
            (s, d) for s, d in graph.edges if (d, s) not in set(graph.edges)
        )
        delta = GraphDelta(insert_edges=((dst, src),))
        old, new = self._plans("cc", graph, delta)
        assert diff_plans(old, new).is_empty

    def test_deletion_shows_up_as_removed(self, graph):
        delta = GraphDelta(delete_edges=(graph.edges[0],))
        old, new = self._plans("sssp", graph, delta)
        diff = diff_plans(old, new)
        assert not diff.is_pure_growth
        assert sum(diff.removed.values()) == 1

    def test_strategy_table(self):
        from collections import Counter

        growth = PlanDiff(Counter({("e", 1): 1}), Counter(), {}, set())
        shrink = PlanDiff(Counter(), Counter({("e", 1): 1}), {}, set())
        assert choose_strategy("full", growth) == "frontier"
        assert choose_strategy("full", shrink) == "rederive"
        assert choose_strategy("insert-only", growth) == "frontier"
        assert choose_strategy("insert-only", shrink) == "recompute"
        assert choose_strategy("none", growth) == "recompute"
        assert choose_strategy("none", shrink) == "recompute"
        for mode in ("full", "insert-only", "none"):
            for diff in (growth, shrink):
                assert choose_strategy(mode, diff) in STRATEGIES

    def test_regressed_initial_disables_pure_growth(self, graph):
        # a weight update can make a base fact worse; the frontier fast
        # path must refuse it
        weighted = graph.with_weights()
        src, dst = weighted.edges[0]
        worse = weighted.weights[0] + 5
        delta = GraphDelta(update_weights=((src, dst, worse),))
        old, new = self._plans("sssp", graph, delta)
        diff = diff_plans(old, new)
        assert not diff.is_pure_growth


class TestRepairPlan:
    def test_frontier_seeds_are_sparse(self, graph):
        # the fast path seeds only the delta's footprint, not the graph
        spec = PROGRAMS["sssp"]
        base = graph.with_weights()
        delta = random_delta(base, seed=7, insert_edges=2)
        old_plan = spec.plan(base)
        new_plan = spec.plan(delta.apply_to(base))
        from repro.engine import MRAEvaluator

        prior = MRAEvaluator(old_plan).run().values
        repair = repair_plan(old_plan, new_plan, prior, mode="full")
        assert repair.strategy == "frontier"
        assert 0 < repair.frontier_size <= 2
        assert repair.reset_keys == 0
        assert repair.stop_reason == "fixpoint"

    def test_rederive_resets_only_affected_cone(self):
        # a path graph makes the affected cone explicit: deleting the
        # edge into vertex 3 can only invalidate vertices 3, 4 and 5
        from repro.graphs import Graph

        base = Graph(6, [(i, i + 1) for i in range(5)], [1.0] * 5, name="path")
        spec = PROGRAMS["sssp"]
        delta = GraphDelta(delete_edges=((2, 3),))
        old_plan = spec.plan(base)
        new_plan = spec.plan(delta.apply_to(base))
        from repro.engine import MRAEvaluator

        prior = MRAEvaluator(old_plan).run().values
        repair = repair_plan(old_plan, new_plan, prior, mode="full")
        assert repair.strategy == "rederive"
        assert repair.reset_keys == 3
        # the surviving prefix keeps its exact distances
        for vertex in (0, 1, 2):
            assert repair.values[vertex] == prior[vertex]

    def test_recompute_reports_full_engine(self, dag):
        spec = PROGRAMS["dag_paths"]
        base = dag.with_weights()
        delta = GraphDelta(delete_edges=(base.edges[0],))
        old_plan = spec.plan(base)
        new_plan = spec.plan(delta.apply_to(base))
        from repro.engine import MRAEvaluator

        prior = MRAEvaluator(old_plan).run().values
        repair = repair_plan(old_plan, new_plan, prior, mode="insert-only")
        assert repair.strategy == "recompute"
        assert repair.result.engine == "mra"
        payload = repair.to_dict()
        assert payload["strategy"] == "recompute"
        assert json.dumps(payload)  # serialisable

    def test_engine_refuses_missing_graph(self):
        with pytest.raises(ValueError, match="graph or a view"):
            IncrementalEngine("sssp")

    def test_engine_tracks_fixpoint_version(self, graph):
        engine = IncrementalEngine("sssp", graph)
        assert engine.fixpoint_version is None
        engine.bootstrap()
        assert engine.fixpoint_version == 1
        engine.apply(random_delta(graph, seed=2, insert_edges=1))
        assert engine.fixpoint_version == engine.view.version == 2

    def test_engine_refresh_catches_up_external_mutations(self, graph):
        view = view_of(graph)
        engine = IncrementalEngine("sssp", view=view)
        engine.bootstrap()
        for step in range(2):
            view.apply(random_delta(view.graph, seed=step, insert_edges=2))
        assert engine.fixpoint_version == 1
        engine.refresh()
        assert engine.fixpoint_version == 3
        from repro.engine import MRAEvaluator

        oracle = MRAEvaluator(PROGRAMS["sssp"].plan(view.graph)).run().values
        assert engine.values == oracle
