"""Corner cases across modules: symbolic constants, odd graphs, empty data."""


import pytest

from repro.datalog import analyze, parse_program
from repro.engine import (
    Database,
    MRAEvaluator,
    NaiveEvaluator,
    compile_plan,
)
from repro.graphs import Graph, chain, star


class TestSymbolConstants:
    def test_string_facts_join(self):
        db = Database()
        db.add_facts("labelled", [(1, "seed"), (2, "other")])
        db.add_facts("edge", [(1, 2, 1), (2, 3, 1)])
        source = """
        dist(X, d) :- labelled(X, "seed"), d = 0.
        dist(Y, min[dy]) :- dist(X, dx), edge(X, Y, w), dy = dx + w.
        """
        analysis = analyze(parse_program(source, name="seeded"))
        result = NaiveEvaluator(analysis, db).run()
        assert result.values == {1: 0, 2: 1, 3: 2}


class TestDegenerateGraphs:
    def test_single_vertex(self):
        graph = Graph(1, [])
        from repro.programs import PROGRAMS

        plan = PROGRAMS["cc"].plan(graph)
        result = MRAEvaluator(plan).run()
        # no edges: the lone vertex keeps (or never gets) its own label
        assert result.values.get(0, 0) == 0

    def test_chain_sssp_distances(self):
        graph = chain(6)
        from repro.programs import PROGRAMS

        plan = PROGRAMS["sssp"].plan(graph)
        weights = dict(
            ((s, d), w) for s, d, w in graph.weighted_edges()
        )
        result = MRAEvaluator(plan).run()
        expected = 0
        for v in range(1, 6):
            expected += weights[(v - 1, v)]
            assert result.values[v] == expected

    def test_star_pagerank_centre_gets_nothing(self):
        graph = star(10)
        from repro.programs import PROGRAMS

        plan = PROGRAMS["pagerank"].plan(graph)
        result = MRAEvaluator(plan).run()
        # centre 0 has no in-edges: rank exactly the constant part
        assert result.values[0] == pytest.approx(0.15, abs=1e-6)
        # every spoke receives 0.15 + 0.85 * 0.15 / 9
        for spoke in range(1, 10):
            assert result.values[spoke] == pytest.approx(
                0.15 + 0.85 * 0.15 / 9, abs=1e-6
            )

    def test_disconnected_component_unreached_by_sssp(self):
        graph = Graph(4, [(0, 1), (2, 3)], weights=[1, 1])
        from repro.programs import PROGRAMS

        plan = PROGRAMS["sssp"].plan(graph)
        result = MRAEvaluator(plan).run()
        assert result.values == {0: 0, 1: 1}  # 2, 3 unreachable


class TestSelfLoops:
    def test_min_program_with_self_loop_terminates(self):
        db = Database()
        db.add_facts("edge", [(0, 0, 1), (0, 1, 2)])
        source = """
        d(X, v) :- X = 0, v = 0.
        d(Y, min[v1]) :- d(X, v), edge(X, Y, w), v1 = v + w.
        """
        analysis = analyze(parse_program(source, name="loop"))
        result = MRAEvaluator(compile_plan(analysis, db)).run()
        assert result.values == {0: 0, 1: 2}
        assert result.stop_reason == "fixpoint"

    def test_contractive_sum_self_loop_converges(self):
        db = Database()
        db.add_facts("edge", [(0, 0, 1)])
        source = """
        s(X, v) :- X = 0, v = 1.
        s(Y, sum[v1]) :- s(X, v), edge(X, Y, w), v1 = 0.5 * v,
            {sum[dv] < 0.000001}.
        """
        analysis = analyze(parse_program(source, name="geometric"))
        result = MRAEvaluator(compile_plan(analysis, db)).run()
        # 1 + 1/2 + 1/4 + ... = 2
        assert result.values[0] == pytest.approx(2.0, abs=1e-4)


class TestEmptyAndMissing:
    def test_program_with_no_matching_base_facts(self):
        db = Database()
        db.add_facts("edge", [(5, 6, 1)])
        source = """
        d(X, v) :- X = 0, v = 0.
        d(Y, min[v1]) :- d(X, v), edge(X, Y, w), v1 = v + w.
        """
        analysis = analyze(parse_program(source, name="missing-source"))
        result = MRAEvaluator(compile_plan(analysis, db)).run()
        # source vertex 0 has no edges: only its own base fact survives
        assert result.values == {0: 0}
