"""Semantic analysis: G / F' / C extraction and class restrictions."""


import pytest

from repro.datalog import AnalysisError, analyze, parse_program
from repro.expr import Call, Var
from repro.programs import PROGRAMS


class TestExtraction:
    def test_sssp(self, sssp_source):
        analysis = analyze(parse_program(sssp_source, name="sssp"))
        assert analysis.aggregate.name == "min"
        assert analysis.fprime == Var("dx") + Var("dxy")
        assert analysis.fprime_params == ("dxy",)
        assert analysis.recursion_var == "dx"
        assert analysis.key_vars == ("Y",)
        assert not analysis.iterated
        assert not analysis.constant_bodies

    def test_pagerank(self, pagerank_source):
        analysis = analyze(parse_program(pagerank_source, name="pagerank"))
        assert analysis.aggregate.name == "sum"
        assert analysis.iterated and analysis.iter_var == "i"
        assert analysis.fprime_params == ("d",)
        assert len(analysis.constant_bodies) == 1
        assert len(analysis.base_rules) == 1
        assert [r.head.name for r in analysis.aux_rules] == ["degree"]
        assert analysis.edb_predicates == ("edge", "node")
        assert analysis.termination is not None
        assert float(analysis.termination.threshold) == pytest.approx(1e-4)

    def test_identity_fprime(self, cc_source):
        analysis = analyze(parse_program(cc_source, name="cc"))
        assert analysis.fprime == Var("v")
        assert analysis.fprime_params == ()

    def test_domains_from_assume(self, pagerank_source):
        analysis = analyze(parse_program(pagerank_source))
        domain = analysis.domains["d"]
        assert domain.lo == 0.0 and domain.lo_strict

    def test_chained_definitions_substituted(self):
        source = """
        v(X, s) :- X = 0, s = 1.
        v(Y, sum[s1]) :- v(X, s), e(X, Y, w), half = s * 0.5, s1 = half * w.
        """
        analysis = analyze(parse_program(source))
        assert analysis.fprime.free_vars() == {"s", "w"}

    def test_gcn_call_extraction(self):
        analysis = PROGRAMS["gcn"].analysis()
        assert analysis.fprime == Call("relu", (Var("g") * Var("p"),)) * Var("w")

    def test_pair_keys(self):
        analysis = PROGRAMS["apsp"].analysis()
        assert analysis.key_vars == ("S", "Y")
        assert analysis.recursion.source_keys == ("S", "X")


class TestDomainsIntersection:
    def test_two_bounds_intersect(self):
        source = """
        assume w >= 0.
        assume w <= 1.
        a(X, v) :- X = 0, v = 1.
        a(Y, sum[v1]) :- a(X, v), e(X, Y, w), v1 = v * w.
        """
        domain = analyze(parse_program(source)).domains["w"]
        assert (domain.lo, domain.hi) == (0.0, 1.0)

    def test_equality_assume(self):
        source = """
        assume c = 2.
        a(X, v) :- X = 0, v = 1.
        a(Y, sum[v1]) :- a(X, v), e(X, Y, c), v1 = v * c.
        """
        domain = analyze(parse_program(source)).domains["c"]
        assert (domain.lo, domain.hi) == (2.0, 2.0)


class TestRejections:
    def test_no_recursive_rule(self):
        with pytest.raises(AnalysisError, match="no recursive rule"):
            analyze(parse_program("a(X, v) :- b(X, v)."))

    def test_mutual_recursion(self):
        source = """
        a(X, min[v]) :- b(X, v).
        b(X, min[v]) :- a(Y, v), e(Y, X).
        a(X, min[v]) :- a(Y, v), e(Y, X).
        """
        with pytest.raises(AnalysisError):
            analyze(parse_program(source))

    def test_nonlinear_recursion(self):
        source = "p(X, Z, min[d]) :- p(X, Y, d1), p(Y, Z, d2), d = d1 + d2."
        with pytest.raises(AnalysisError, match="non-linear"):
            analyze(parse_program(source))

    def test_missing_aggregate(self):
        source = "a(X, v) :- a(Y, v), e(Y, X)."
        with pytest.raises(AnalysisError, match="no aggregate"):
            analyze(parse_program(source))

    def test_aggregate_not_last(self):
        source = "a(min[v], X) :- a(v, Y), e(Y, X)."
        with pytest.raises(AnalysisError):
            analyze(parse_program(source))

    def test_undefined_aggregate_variable(self):
        source = "a(X, min[w]) :- a(Y, v), e(Y, X)."
        with pytest.raises(AnalysisError, match="not defined"):
            analyze(parse_program(source))

    def test_duplicate_definition(self):
        source = """
        a(X, min[v1]) :- a(Y, v), e(Y, X), v1 = v + 1, v1 = v + 2.
        """
        with pytest.raises(AnalysisError, match="more than once"):
            analyze(parse_program(source))


class TestMultipleRecursiveBodies:
    """Program-2.b style rules: several recursive bodies, each with F'."""

    SOURCE = """
    rank(0, X, r) :- node(X), r = 0.15.
    rank(i+1, Y, sum[ry]) :- rank(i, Y, prev), ry = prev;
        :- rank(i, X, rx), edge(X, Y), degree(X, d), ry = 0.85 * rx / d,
           {sum[delta] < 0.001}.
    degree(X, count[Y]) :- edge(X, Y).
    assume d > 0.
    """

    def test_two_recursions_extracted(self):
        analysis = analyze(parse_program(self.SOURCE, name="pagerank-2b"))
        assert len(analysis.recursions) == 2

    def test_primary_is_the_join_body(self):
        analysis = analyze(parse_program(self.SOURCE, name="pagerank-2b"))
        assert analysis.recursion.join_atoms  # edge + degree
        assert analysis.fprime_params == ("d",)

    def test_self_body_has_identity_fprime(self):
        from repro.expr import Var

        analysis = analyze(parse_program(self.SOURCE, name="pagerank-2b"))
        self_spec = analysis.recursions[1]
        assert not self_spec.join_atoms
        assert self_spec.fprime == Var("prev")


class TestLibraryPrograms:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_analyzes(self, name):
        analysis = PROGRAMS[name].analysis()
        assert analysis.head
        assert analysis.fprime is not None

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_fprime_mentions_only_recursion_var_and_params(self, name):
        analysis = PROGRAMS[name].analysis()
        allowed = {analysis.recursion_var, *analysis.fprime_params}
        assert analysis.fprime.free_vars() <= allowed
