"""Automatic conversion to the equivalent incremental program (§3.3)."""

import pytest

from repro.checker import check_analysis
from repro.datalog import analyze, incremental_source, rewrite_to_incremental
from repro.engine import MRAEvaluator, NaiveEvaluator, compile_plan
from repro.graphs import rmat
from repro.programs import PROGRAMS

ITERATED_ADDITIVE = ["pagerank", "adsorption", "katz", "bp"]


class TestRewriteShape:
    def test_pagerank_matches_program_2b(self):
        source = incremental_source(PROGRAMS["pagerank"].analysis())
        # Program 2.b's structure: a seeding base rule and the recursion,
        # iteration indexes gone
        assert "rank(Y, ry) :- node(Y), ry = 0.15." in source
        assert "i+1" not in source
        assert "rank(X, rx), edge(X, Y), degree(X, d)" in source

    def test_rewritten_program_parses_and_analyzes(self):
        for name in ITERATED_ADDITIVE:
            rewritten = rewrite_to_incremental(PROGRAMS[name].analysis())
            analysis = analyze(rewritten)
            assert not analysis.iterated
            assert analysis.aggregate.name == "sum"

    def test_non_iterated_programs_unchanged(self):
        analysis = PROGRAMS["sssp"].analysis()
        assert rewrite_to_incremental(analysis) is analysis.program

    def test_selective_programs_unchanged(self):
        analysis = PROGRAMS["cc"].analysis()
        assert rewrite_to_incremental(analysis) is analysis.program


class TestRewriteEquivalence:
    """The conversion must preserve the fixpoint (Theorem 1)."""

    @pytest.mark.parametrize("name", ["pagerank", "adsorption", "katz"])
    def test_same_fixpoint_under_naive(self, name):
        original = PROGRAMS[name].analysis()
        rewritten = analyze(rewrite_to_incremental(original))
        graph = rmat(30, 120, seed=5)
        db = PROGRAMS[name].build_database(graph)
        expected = NaiveEvaluator(original, db).run().values
        got = NaiveEvaluator(rewritten, db).run().values
        for key, value in expected.items():
            assert got[key] == pytest.approx(value, abs=1e-6)

    @pytest.mark.parametrize("name", ["pagerank", "adsorption"])
    def test_same_fixpoint_under_mra(self, name):
        original = PROGRAMS[name].analysis()
        rewritten = analyze(rewrite_to_incremental(original))
        graph = rmat(30, 120, seed=5)
        db = PROGRAMS[name].build_database(graph)
        expected = NaiveEvaluator(original, db).run().values
        got = MRAEvaluator(compile_plan(rewritten, db)).run().values
        for key, value in expected.items():
            assert got[key] == pytest.approx(value, abs=1e-6)

    @pytest.mark.parametrize("name", ITERATED_ADDITIVE)
    def test_rewritten_passes_the_check(self, name):
        rewritten = analyze(rewrite_to_incremental(PROGRAMS[name].analysis()))
        assert check_analysis(rewritten).mra_satisfiable


class TestMultiBodyRewriteRoundTrip:
    """A hand-written Program 2.b (two recursive bodies) still works."""

    SOURCE = """
    assume d > 0.
    degree(X, count[Y]) :- edge(X, Y).
    rank(Y, ry) :- node(Y), ry = 0.15.
    rank(Y, sum[ry]) :- rank(X, rx), edge(X, Y), degree(X, d),
        ry = 0.85 * rx / d, {sum[delta] < 0.0001}.
    """

    def test_runs_on_all_engines(self):
        from repro.datalog import parse_program

        analysis = analyze(parse_program(self.SOURCE, name="rank-2b"))
        graph = rmat(25, 100, seed=6)
        db = PROGRAMS["pagerank"].build_database(graph)
        naive = NaiveEvaluator(analysis, db).run()
        mra = MRAEvaluator(compile_plan(analysis, db)).run()
        for key, value in naive.values.items():
            assert mra.values[key] == pytest.approx(value, abs=1e-3)
