"""Naive, semi-naive and MRA evaluation on the relational/compiled paths."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import analyze, parse_program
from repro.engine import (
    MRAEvaluator,
    NaiveEvaluator,
    SemiNaiveEvaluator,
    compile_plan,
)
from repro.engine.mra import compute_initial_delta
from repro.engine.seminaive import UnsupportedProgramError
from repro.graphs import rmat
from repro.programs import PROGRAMS


class TestNaiveSSSP:
    def test_hand_computed_distances(self, diamond_db, sssp_source):
        analysis = analyze(parse_program(sssp_source))
        result = NaiveEvaluator(analysis, diamond_db).run()
        assert result.values == {1: 0, 2: 2, 3: 1, 4: 4}
        assert result.stop_reason == "fixpoint"

    def test_iterations_match_bellman_ford_depth(self, diamond_db, sssp_source):
        analysis = analyze(parse_program(sssp_source))
        result = NaiveEvaluator(analysis, diamond_db).run()
        # longest shortest path has 3 hops; +1 iteration to detect fixpoint
        assert result.counters.iterations == 4

    def test_input_database_not_mutated(self, diamond_db, sssp_source):
        analysis = analyze(parse_program(sssp_source))
        before = len(diamond_db.relation("edge"))
        NaiveEvaluator(analysis, diamond_db).run()
        assert len(diamond_db.relation("edge")) == before
        assert "sssp" not in diamond_db


class TestNaivePageRank:
    def test_epsilon_termination(self, triangle_db, pagerank_source):
        analysis = analyze(parse_program(pagerank_source))
        result = NaiveEvaluator(analysis, triangle_db).run()
        assert result.stop_reason == "epsilon"

    def test_values_at_fixpoint(self, triangle_db, pagerank_source):
        analysis = analyze(parse_program(pagerank_source))
        values = NaiveEvaluator(analysis, triangle_db).run().values
        # fixpoint equations: r1 = .15 + .85*(r2/2 + r3), r2 = .15 + .85*r1,
        # r3 = .15 + .85*r2/2
        r1, r2, r3 = values[1], values[2], values[3]
        assert r1 == pytest.approx(0.15 + 0.85 * (r2 / 2 + r3), abs=1e-3)
        assert r2 == pytest.approx(0.15 + 0.85 * r1, abs=1e-3)
        assert r3 == pytest.approx(0.15 + 0.85 * r2 / 2, abs=1e-3)


class TestSemiNaive:
    def test_matches_naive_on_sssp(self, diamond_db, sssp_source):
        analysis = analyze(parse_program(sssp_source))
        naive = NaiveEvaluator(analysis, diamond_db).run()
        semi = SemiNaiveEvaluator(analysis, diamond_db).run()
        assert naive.values == semi.values

    def test_less_join_work_than_naive(self, sssp_source):
        graph = rmat(60, 300, seed=17)
        db = PROGRAMS["sssp"].build_database(graph)
        analysis = PROGRAMS["sssp"].analysis()
        naive = NaiveEvaluator(analysis, db).run()
        semi = SemiNaiveEvaluator(analysis, db).run()
        assert (
            semi.counters.bindings_produced < naive.counters.bindings_produced
        )

    def test_rejects_additive_programs(self, triangle_db, pagerank_source):
        analysis = analyze(parse_program(pagerank_source))
        with pytest.raises(UnsupportedProgramError, match="monotonic"):
            SemiNaiveEvaluator(analysis, triangle_db)

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_equivalent_to_naive_on_random_graphs(self, seed):
        graph = rmat(25, 100, seed=seed)
        db = PROGRAMS["cc"].build_database(graph)
        analysis = PROGRAMS["cc"].analysis()
        naive = NaiveEvaluator(analysis, db).run()
        semi = SemiNaiveEvaluator(analysis, db).run()
        assert naive.values == semi.values


class TestInitialDelta:
    """Section 3.3: ``X¹ = G(ΔX¹ ∪ X⁰)`` must hold exactly."""

    @pytest.mark.parametrize("name", ["sssp", "pagerank", "katz", "adsorption"])
    def test_delta_recreates_x1(self, name, small_graph):
        spec = PROGRAMS[name]
        plan = spec.plan(small_graph)
        aggregate = plan.aggregate
        delta = compute_initial_delta(plan)

        # recompute X¹ naively from the plan
        x1: dict = dict(plan.initial)
        for key, value in plan.constants.items():
            x1[key] = value if key not in x1 else aggregate.combine(x1[key], value)
        for src, value in plan.initial.items():
            for dst, params, fn in plan.edges_from(src):
                contribution = fn(value, *params)
                x1[dst] = (
                    contribution
                    if dst not in x1
                    else aggregate.combine(x1[dst], contribution)
                )

        for key, value in x1.items():
            pieces = [v for v in (plan.initial.get(key), delta.get(key)) if v is not None]
            assert pieces, f"no reconstruction for {key}"
            assert aggregate.combine_many(pieces) == pytest.approx(value)

    def test_sssp_delta_is_x1_for_new_keys(self, diamond_db, sssp_source):
        analysis = analyze(parse_program(sssp_source))
        plan = compile_plan(analysis, diamond_db)
        delta = compute_initial_delta(plan)
        # paper: ΔX¹ = X¹ for SSSP -- the source's unchanged 0 is dropped
        assert delta == {2: 4, 3: 1}


class TestMRAEquivalence:
    """Theorem 1: MRA evaluation equals naive evaluation."""

    GRAPH_PROGRAMS = ["sssp", "cc", "pagerank", "adsorption", "katz"]

    @pytest.mark.parametrize("name", GRAPH_PROGRAMS)
    def test_matches_naive(self, name, small_graph):
        spec = PROGRAMS[name]
        analysis = spec.analysis()
        db = spec.build_database(small_graph)
        naive = NaiveEvaluator(analysis, db).run()
        mra = MRAEvaluator(compile_plan(analysis, db)).run()
        tolerance = 0 if analysis.aggregate.is_idempotent else 1e-3
        assert set(naive.values) == set(mra.values)
        for key, expected in naive.values.items():
            assert mra.values[key] == pytest.approx(expected, abs=tolerance)

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_sssp_equivalence_random_graphs(self, seed):
        graph = rmat(30, 120, seed=seed)
        spec = PROGRAMS["sssp"]
        analysis = spec.analysis()
        db = spec.build_database(graph)
        naive = NaiveEvaluator(analysis, db).run()
        mra = MRAEvaluator(compile_plan(analysis, db)).run()
        assert naive.values == mra.values

    def test_mra_counts_work(self, small_graph):
        plan = PROGRAMS["sssp"].plan(small_graph)
        result = MRAEvaluator(plan).run()
        assert result.counters.fprime_applications > 0
        assert result.counters.updates >= len(result.values) - 1
