"""Machine-checked semiring laws for every registered instance.

The law flags on :class:`repro.aggregates.Semiring` are consumed as
proof obligations by the rest of the system -- the MonoTable prunes on
``plus_idempotent``, the delta layer picks repair strategies from
``plus_invertible``, the prescreen discharges ``times_monotone`` -- so
an instance shipping with a lying flag would silently corrupt
fixpoints.  This suite quantifies every law over each instance's
declared ``samples`` carrier with Hypothesis, including the flags that
are *supposed* to be off (counting's non-idempotence has a pinned
counterexample, not just an unchecked ``False``).

The natural order used below is the algebraic one: for idempotent
``⊕``, ``a ≼ b  ⟺  a ⊕ b = a`` (the "absorbs" order); for invertible
``⊕`` over numbers it is plain ``≤``.  Both agree with the carrier
comparisons the engines use.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aggregates import (
    BUILTIN_AGGREGATES,
    KTuple,
    REGISTERED_SEMIRINGS,
    get_semiring,
)

SEMIRINGS = sorted(REGISTERED_SEMIRINGS.values(), key=lambda s: s.name)
IDS = [s.name for s in SEMIRINGS]

each_semiring = pytest.mark.parametrize("semiring", SEMIRINGS, ids=IDS)
law_settings = settings(max_examples=60, deadline=None)


def draw_samples(data, semiring, count):
    strategy = st.sampled_from(semiring.samples)
    return tuple(data.draw(strategy) for _ in range(count))


class TestMonoidLaws:
    @each_semiring
    @law_settings
    @given(data=st.data())
    def test_plus_associative(self, semiring, data):
        a, b, c = draw_samples(data, semiring, 3)
        assert semiring.plus(semiring.plus(a, b), c) == semiring.plus(
            a, semiring.plus(b, c)
        )

    @each_semiring
    @law_settings
    @given(data=st.data())
    def test_plus_commutative(self, semiring, data):
        a, b = draw_samples(data, semiring, 2)
        assert semiring.plus(a, b) == semiring.plus(b, a)

    @each_semiring
    @law_settings
    @given(data=st.data())
    def test_zero_is_plus_identity(self, semiring, data):
        (a,) = draw_samples(data, semiring, 1)
        assert semiring.plus(semiring.zero, a) == a
        assert semiring.plus(a, semiring.zero) == a

    @each_semiring
    @law_settings
    @given(data=st.data())
    def test_one_is_times_identity(self, semiring, data):
        (a,) = draw_samples(data, semiring, 1)
        assert semiring.times(semiring.one, a) == a
        assert semiring.times(a, semiring.one) == a

    @each_semiring
    @law_settings
    @given(data=st.data())
    def test_zero_annihilates_times(self, semiring, data):
        (a,) = draw_samples(data, semiring, 1)
        assert semiring.times(semiring.zero, a) == semiring.zero
        assert semiring.times(a, semiring.zero) == semiring.zero

    @each_semiring
    @law_settings
    @given(data=st.data())
    def test_times_distributes_over_plus(self, semiring, data):
        a, b, c = draw_samples(data, semiring, 3)
        folded = semiring.times(a, semiring.plus(b, c))
        split = semiring.plus(semiring.times(a, b), semiring.times(a, c))
        assert folded == split
        # right distributivity too: every registered ⊗ is commutative,
        # but the law is stated (and consumed) two-sided
        folded = semiring.times(semiring.plus(b, c), a)
        split = semiring.plus(semiring.times(b, a), semiring.times(c, a))
        assert folded == split


class TestDeclaredFlags:
    @each_semiring
    @law_settings
    @given(data=st.data())
    def test_idempotence_where_flagged(self, semiring, data):
        if not semiring.plus_idempotent:
            pytest.skip("⊕ not declared idempotent")
        (a,) = draw_samples(data, semiring, 1)
        assert semiring.plus(a, a) == a

    def test_counting_is_not_idempotent(self):
        # the one registered non-idempotent ⊕ must actually fail the
        # law, otherwise its False flag is untested documentation
        counting = get_semiring("counting")
        assert any(
            counting.plus(a, a) != a for a in counting.samples
        )

    @each_semiring
    @law_settings
    @given(data=st.data())
    def test_invertibility_where_flagged(self, semiring, data):
        if not semiring.plus_invertible:
            pytest.skip("⊕ not declared invertible")
        a, b = draw_samples(data, semiring, 2)
        # invertible ⊕ over a numeric carrier embeds in (ℝ, +): the
        # delta layer's G⁻ retraction is exactly this subtraction
        assert semiring.numeric_values
        assert semiring.plus(a, -a) == semiring.zero
        assert semiring.plus(semiring.plus(a, b), -b) == a

    @each_semiring
    @law_settings
    @given(data=st.data())
    def test_idempotent_numeric_plus_is_a_selection(self, semiring, data):
        if not (semiring.plus_idempotent and semiring.numeric_values):
            pytest.skip("selection shape only claimed for numeric ⊕-idem")
        a, b = draw_samples(data, semiring, 2)
        folded = semiring.plus(a, b)
        assert folded == a or folded == b


class TestNaturalOrder:
    """``a ≼ b ⟺ a ⊕ b = a`` really is an order, and ⊗ respects it."""

    @each_semiring
    @law_settings
    @given(data=st.data())
    def test_absorb_order_is_a_partial_order(self, semiring, data):
        if not (semiring.naturally_ordered and semiring.plus_idempotent):
            pytest.skip("absorb order needs idempotent ⊕")
        a, b, c = draw_samples(data, semiring, 3)
        plus = semiring.plus
        assert plus(a, a) == a  # reflexive
        if plus(a, b) == a and plus(b, a) == b:
            assert a == b  # antisymmetric
        if plus(a, b) == a and plus(b, c) == b:
            assert plus(a, c) == a  # transitive

    @each_semiring
    @law_settings
    @given(data=st.data())
    def test_times_monotone_where_flagged(self, semiring, data):
        if not semiring.times_monotone:
            pytest.skip("⊗ not declared monotone")
        a, b, c = draw_samples(data, semiring, 3)
        if semiring.plus_idempotent:
            # a ≼ b ⟹ a⊗c ≼ b⊗c in the absorb order
            if semiring.plus(a, b) == a:
                ac, bc = semiring.times(a, c), semiring.times(b, c)
                assert semiring.plus(ac, bc) == ac
        else:
            # invertible numeric carriers: the natural order is ≤
            if a <= b:
                assert semiring.times(a, c) <= semiring.times(b, c)


class TestAggregateBindings:
    """Every builtin aggregate's declared semiring is registered & consistent."""

    def test_every_aggregate_names_a_registered_semiring(self):
        for name, aggregate in BUILTIN_AGGREGATES.items():
            semiring = aggregate.semiring
            if name == "mean":
                # mean's pairwise fold is not associative; it has no
                # semiring on purpose (that is what RA341 reports)
                assert semiring is None
                continue
            assert semiring is REGISTERED_SEMIRINGS[semiring.name], name

    def test_aggregate_flags_mirror_semiring_flags(self):
        for name, aggregate in BUILTIN_AGGREGATES.items():
            semiring = aggregate.semiring
            if semiring is None:
                continue
            assert aggregate.plus_idempotent == semiring.plus_idempotent, name
            assert aggregate.plus_invertible == semiring.plus_invertible, name
            assert aggregate.naturally_ordered == semiring.naturally_ordered, name
            assert aggregate.numeric_values == semiring.numeric_values, name

    def test_combine_agrees_with_semiring_plus(self):
        for name, aggregate in BUILTIN_AGGREGATES.items():
            semiring = aggregate.semiring
            if semiring is None:
                continue
            for a in semiring.samples:
                for b in semiring.samples:
                    assert aggregate.combine(a, b) == semiring.plus(a, b), name

    def test_samples_are_nonempty_for_every_instance(self):
        # the suite above quantifies over samples; an empty tuple would
        # vacuously pass every law, so emptiness itself is a failure
        for name, semiring in REGISTERED_SEMIRINGS.items():
            assert len(semiring.samples) >= 2, name

    def test_ktuple_shift_matches_times(self):
        ktropical = get_semiring("k-tropical")
        a = KTuple((1, 4, 9))
        # compiled F' bodies spell ⊗ as ``dx + w``; both spellings must
        # be the same operation
        assert a + 2.5 == a.shift(2.5)
        assert 2.5 + a == a.shift(2.5)
        assert ktropical.times(a, KTuple((2.5,))) == a.shift(2.5)
