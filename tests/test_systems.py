"""Baseline system models and the PowerLog pipeline (Figure 2)."""

import pytest

from repro.distributed import ClusterConfig
from repro.engine import MRAEvaluator
from repro.graphs import rmat
from repro.programs import PROGRAMS
from repro.systems import SYSTEMS, PowerLog, get_system


@pytest.fixture(scope="module")
def graph():
    return rmat(70, 350, seed=51, name="systems-graph")


@pytest.fixture(scope="module")
def cluster():
    return ClusterConfig(num_workers=8)


def reference_values(program, graph):
    return MRAEvaluator(PROGRAMS[program].plan(graph)).run().values


class TestRegistry:
    def test_all_systems_present(self):
        assert set(SYSTEMS) == {
            "SociaLite",
            "Myria",
            "BigDatalog",
            "PowerGraph",
            "Maiter",
            "Prom",
            "PowerLog",
        }

    def test_lookup(self):
        assert get_system("PowerLog").name == "PowerLog"

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_system("Oracle")


class TestSupportMatrix:
    """Paper section 6.3: Myria/BigDatalog lack Adsorption, Katz, BP."""

    @pytest.mark.parametrize("system_name", ["Myria", "BigDatalog"])
    @pytest.mark.parametrize("program", ["adsorption", "katz", "bp"])
    def test_unsupported(self, system_name, program):
        assert not SYSTEMS[system_name].supports(PROGRAMS[program])

    @pytest.mark.parametrize("system_name", ["SociaLite", "PowerLog"])
    @pytest.mark.parametrize("program", ["adsorption", "katz", "bp"])
    def test_supported_elsewhere(self, system_name, program):
        assert SYSTEMS[system_name].supports(PROGRAMS[program])


class TestCorrectness:
    @pytest.mark.parametrize(
        "system_name", ["SociaLite", "Myria", "BigDatalog", "PowerLog", "PowerGraph"]
    )
    def test_sssp(self, system_name, graph, cluster):
        result = SYSTEMS[system_name].run(PROGRAMS["sssp"], graph, cluster)
        assert result.values == reference_values("sssp", graph)

    @pytest.mark.parametrize(
        "system_name", ["SociaLite", "Myria", "BigDatalog", "PowerLog", "Maiter"]
    )
    def test_pagerank(self, system_name, graph, cluster):
        result = SYSTEMS[system_name].run(PROGRAMS["pagerank"], graph, cluster)
        expected = reference_values("pagerank", graph)
        for key, value in expected.items():
            assert result.values[key] == pytest.approx(value, abs=2e-3)

    def test_prom_bp(self, cluster):
        small = rmat(30, 120, seed=52)
        result = SYSTEMS["Prom"].run(PROGRAMS["bp"], small, cluster)
        expected = reference_values("bp", small)
        for key, value in expected.items():
            assert result.values[key] == pytest.approx(value, abs=2e-3)


class TestStrategies:
    def test_socialite_uses_naive_for_pagerank(self, graph, cluster):
        result = SYSTEMS["SociaLite"].run(PROGRAMS["pagerank"], graph, cluster)
        assert "naive" in result.engine

    def test_socialite_uses_incremental_for_sssp(self, graph, cluster):
        result = SYSTEMS["SociaLite"].run(PROGRAMS["sssp"], graph, cluster)
        assert "incremental" in result.engine and "delta-step" in result.engine

    def test_myria_async_for_monotonic(self, graph, cluster):
        result = SYSTEMS["Myria"].run(PROGRAMS["cc"], graph, cluster)
        assert "async" in result.engine

    def test_bigdatalog_labelled_graphx_for_pagerank(self, graph, cluster):
        result = SYSTEMS["BigDatalog"].run(PROGRAMS["pagerank"], graph, cluster)
        assert "GraphX" in result.engine

    def test_powerlog_unified_for_satisfiable(self, graph, cluster):
        result = SYSTEMS["PowerLog"].run(PROGRAMS["pagerank"], graph, cluster)
        assert "sync-async" in result.engine


class TestPowerLogDecision:
    def test_mra_route(self):
        decision = PowerLog().decide(PROGRAMS["pagerank"])
        assert decision.evaluation == "mra"
        assert decision.engine == "unified sync-async"

    def test_naive_route_for_gcn(self):
        decision = PowerLog().decide(PROGRAMS["gcn"])
        assert decision.evaluation == "naive"
        assert decision.engine == "sync"

    def test_decision_summary_readable(self):
        summary = PowerLog().decide(PROGRAMS["sssp"]).summary()
        assert "sssp" in summary and "mra" in summary


class TestRelativePerformance:
    """The headline ordering: PowerLog fastest on additive programs."""

    def test_powerlog_beats_naive_baselines_on_pagerank(self, graph, cluster):
        times = {}
        for name in ("SociaLite", "Myria", "PowerLog"):
            result = SYSTEMS[name].run(PROGRAMS["pagerank"], graph, cluster)
            times[name] = result.simulated_seconds
        assert times["PowerLog"] < times["SociaLite"]
        assert times["PowerLog"] < times["Myria"]

    def test_powerlog_fastest_on_cc_at_dataset_scale(self):
        from repro.graphs import load_dataset

        graph = load_dataset("livej")
        times = {}
        for name in ("SociaLite", "Myria", "BigDatalog", "PowerLog"):
            result = SYSTEMS[name].run(PROGRAMS["cc"], graph)
            times[name] = result.simulated_seconds
        assert min(times, key=times.get) == "PowerLog"

    def test_run_named_wraps_metadata(self, graph, cluster):
        run = SYSTEMS["PowerLog"].run_named(PROGRAMS["sssp"], graph, cluster)
        assert run.system == "PowerLog"
        assert run.program == "sssp"
        assert run.dataset == graph.name
        assert run.seconds > 0
