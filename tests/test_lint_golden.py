"""Golden diagnostics: ``repro lint --format json`` output is a contract.

Every registry program and every seeded-bad example under
``examples/datalog/`` is snapshotted.  Codes, messages, severities and
theorem verdicts are pinned -- renumbering an ``RAxxx`` code or
reordering diagnostics is a breaking change and must show up here.

Regenerate intentionally with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_lint_golden.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.programs.registry import PROGRAMS

GOLDEN_DIR = Path(__file__).parent / "golden"
EXAMPLES_DIR = Path(__file__).parent.parent / "examples" / "datalog"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.dl"))

# bad examples fail plain lint; the async-ineligible one only fails gated
EXPECTED_EXIT = {
    "bad_unstratifiable": 1,
    "bad_unbound": 1,
    "bad_async_ineligible": 0,
}


def lint_json(capsys, target):
    code = main(["lint", target, "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    return code, payload


def assert_matches_golden(payload, name):
    golden_path = GOLDEN_DIR / f"{name}.json"
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if REGEN or not golden_path.exists():
        golden_path.write_text(rendered)
    assert json.loads(golden_path.read_text()) == json.loads(rendered), (
        f"lint output for {name!r} drifted from {golden_path}; "
        "if intentional, rerun with REPRO_REGEN_GOLDEN=1"
    )


class TestRegistryGoldens:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_registry_program(self, capsys, name):
        code, payload = lint_json(capsys, name)
        assert code == 0, f"registry program {name} must lint clean"
        assert_matches_golden(payload, name)


class TestExampleGoldens:
    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
    )
    def test_example_file(self, capsys, path):
        code, payload = lint_json(capsys, str(path))
        assert code == EXPECTED_EXIT.get(path.stem, 0), path.stem
        assert_matches_golden(payload, path.stem)

    def test_bad_examples_present(self):
        stems = {p.stem for p in EXAMPLE_FILES}
        assert set(EXPECTED_EXIT) <= stems

    def test_async_gate_fails_ineligible_example(self, capsys):
        target = str(EXAMPLES_DIR / "bad_async_ineligible.dl")
        assert main(["lint", target, "--gate", "async"]) == 1
        out = capsys.readouterr().out
        assert "RA310" in out

    def test_async_gate_passes_certified_example(self, capsys):
        target = str(EXAMPLES_DIR / "reachable_cost.dl")
        assert main(["lint", target, "--gate", "async"]) == 0
        capsys.readouterr()


class TestStableCodes:
    """The specific codes the seeded-bad examples were seeded to produce."""

    def expect_codes(self, capsys, stem, codes):
        _, payload = lint_json(capsys, str(EXAMPLES_DIR / f"{stem}.dl"))
        produced = {d["code"] for d in payload["diagnostics"]}
        assert codes <= produced, f"{stem}: {produced}"

    def test_unstratifiable(self, capsys):
        self.expect_codes(capsys, "bad_unstratifiable", {"RA102", "RA110"})

    def test_unbound(self, capsys):
        self.expect_codes(capsys, "bad_unbound", {"RA201"})

    def test_async_ineligible(self, capsys):
        self.expect_codes(capsys, "bad_async_ineligible", {"RA310", "RA302"})
