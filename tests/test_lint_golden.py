"""Golden diagnostics: ``repro lint --format json`` output is a contract.

Every registry program and every seeded-bad example under
``examples/datalog/`` is snapshotted.  Codes, messages, severities and
theorem verdicts are pinned -- renumbering an ``RAxxx`` code or
reordering diagnostics is a breaking change and must show up here.

Regenerate intentionally with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_lint_golden.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.programs.registry import PROGRAMS

GOLDEN_DIR = Path(__file__).parent / "golden"
EXAMPLES_DIR = Path(__file__).parent.parent / "examples" / "datalog"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.dl"))

# bad examples fail plain lint; the async-ineligible and overflow ones
# only fail gated, and the two semiring-violation seeds warn without
# failing
EXPECTED_EXIT = {
    "bad_unstratifiable": 1,
    "bad_unbound": 1,
    "bad_async_ineligible": 0,
    "bad_mean_semiring": 0,
    "bad_uncertified_times": 0,
    "bad_overflow": 0,
}


def lint_json(capsys, target):
    code = main(["lint", target, "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    return code, payload


def assert_matches_golden(payload, name):
    golden_path = GOLDEN_DIR / f"{name}.json"
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if REGEN or not golden_path.exists():
        golden_path.write_text(rendered)
    assert json.loads(golden_path.read_text()) == json.loads(rendered), (
        f"lint output for {name!r} drifted from {golden_path}; "
        "if intentional, rerun with REPRO_REGEN_GOLDEN=1"
    )


class TestRegistryGoldens:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_registry_program(self, capsys, name):
        code, payload = lint_json(capsys, name)
        assert code == 0, f"registry program {name} must lint clean"
        assert_matches_golden(payload, name)


class TestExampleGoldens:
    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
    )
    def test_example_file(self, capsys, path):
        code, payload = lint_json(capsys, str(path))
        assert code == EXPECTED_EXIT.get(path.stem, 0), path.stem
        assert_matches_golden(payload, path.stem)

    def test_bad_examples_present(self):
        stems = {p.stem for p in EXAMPLE_FILES}
        assert set(EXPECTED_EXIT) <= stems

    def test_async_gate_fails_ineligible_example(self, capsys):
        target = str(EXAMPLES_DIR / "bad_async_ineligible.dl")
        assert main(["lint", target, "--gate", "async"]) == 1
        out = capsys.readouterr().out
        assert "RA310" in out

    def test_async_gate_passes_certified_example(self, capsys):
        target = str(EXAMPLES_DIR / "reachable_cost.dl")
        assert main(["lint", target, "--gate", "async"]) == 0
        capsys.readouterr()

    def test_overflow_gate_fails_unbounded_example(self, capsys):
        target = str(EXAMPLES_DIR / "bad_overflow.dl")
        assert main(["lint", target, "--gate", "overflow"]) == 1
        out = capsys.readouterr().out
        assert "RA351" in out

    def test_overflow_gate_passes_bounded_example(self, capsys):
        target = str(EXAMPLES_DIR / "reachable_cost.dl")
        assert main(["lint", target, "--gate", "overflow"]) == 0
        capsys.readouterr()


class TestStableCodes:
    """The specific codes the seeded-bad examples were seeded to produce."""

    def expect_codes(self, capsys, stem, codes):
        _, payload = lint_json(capsys, str(EXAMPLES_DIR / f"{stem}.dl"))
        produced = {d["code"] for d in payload["diagnostics"]}
        assert codes <= produced, f"{stem}: {produced}"

    def test_unstratifiable(self, capsys):
        self.expect_codes(capsys, "bad_unstratifiable", {"RA102", "RA110"})

    def test_unbound(self, capsys):
        self.expect_codes(capsys, "bad_unbound", {"RA201"})

    def test_async_ineligible(self, capsys):
        self.expect_codes(capsys, "bad_async_ineligible", {"RA310", "RA302"})

    def test_mean_is_no_semiring(self, capsys):
        # mean's ⊕ is not associative: no semiring, nothing conditioned
        # on one (RA341 and the RA322/RA331 downgrades travel together)
        self.expect_codes(
            capsys, "bad_mean_semiring", {"RA341", "RA322", "RA331"}
        )

    def test_uncertified_times(self, capsys):
        # declared ⊕-semiring but an F' outside the pattern table: the
        # ⊗ obligation is not structurally discharged
        self.expect_codes(capsys, "bad_uncertified_times", {"RA342", "RA310"})

    def test_overflow(self, capsys):
        # the assume-declared factor >= 2 proves multiplicative growth
        # with no epsilon stop: the symbolic range pass must warn
        self.expect_codes(capsys, "bad_overflow", {"RA351"})


class TestIncrementalCodes:
    """RA32x incremental-maintainability verdicts per registry program.

    These gate :mod:`repro.delta` repair strategies, so the mapping is a
    contract: a program silently moving between RA320/RA321/RA322 would
    change which serving-layer cache entries get repaired in place.
    """

    #: selective fixpoints: deletions re-derive, inserts take the frontier
    FULL = {"sssp", "cc", "viterbi", "lca", "apsp", "why_reach", "kpaths", "reach_prob"}
    #: additive fixpoints: insert-only fast path, deletions recompute
    INSERT_ONLY = {"dag_paths", "cost", "path_count"}

    def verdict_of(self, capsys, name):
        _, payload = lint_json(capsys, name)
        return payload["incremental"], {
            d["code"] for d in payload["diagnostics"]
        }

    @pytest.mark.parametrize("name", sorted(FULL))
    def test_selective_programs_are_ra320(self, capsys, name):
        verdict, codes = self.verdict_of(capsys, name)
        assert "RA320" in codes
        assert verdict["mode"] == "full" and verdict["maintainable"]

    @pytest.mark.parametrize("name", sorted(INSERT_ONLY))
    def test_additive_programs_are_ra321(self, capsys, name):
        verdict, codes = self.verdict_of(capsys, name)
        assert "RA321" in codes
        assert verdict["mode"] == "insert-only" and verdict["maintainable"]

    @pytest.mark.parametrize(
        "name", sorted(set(PROGRAMS) - FULL - INSERT_ONLY)
    )
    def test_everything_else_is_ra322(self, capsys, name):
        verdict, codes = self.verdict_of(capsys, name)
        assert "RA322" in codes
        assert verdict["mode"] == "none" and not verdict["maintainable"]

    def test_epsilon_termination_is_called_out(self, capsys):
        # simrank is structurally a sum fixpoint, but its epsilon stop
        # makes repaired and from-scratch runs diverge -- the detail
        # must say so, not just "none"
        verdict, _ = self.verdict_of(capsys, "simrank")
        assert "epsilon" in verdict["detail"]


class TestFrontierCodes:
    """RA33x sparse-frontier scheduling verdicts per registry program.

    The sparse backend's bucketed delta-stepping is only offered where
    the RA330 verdict holds; everything else runs frontier compaction
    without value buckets.  The mapping is a contract with the engine
    layer's refusal path, so it is pinned here.
    """

    #: selective idempotent fixpoints over numeric carriers: value
    #: buckets are exact (kpaths is selective but its KTuple carrier
    #: cannot key float buckets, so it stays compaction-only)
    DELTA_STEPPING = {"sssp", "cc", "viterbi", "lca", "apsp", "why_reach", "reach_prob"}

    def verdict_of(self, capsys, name):
        _, payload = lint_json(capsys, name)
        return payload["frontier"], {
            d["code"] for d in payload["diagnostics"]
        }

    @pytest.mark.parametrize("name", sorted(DELTA_STEPPING))
    def test_selective_programs_are_ra330(self, capsys, name):
        verdict, codes = self.verdict_of(capsys, name)
        assert "RA330" in codes
        assert verdict["mode"] == "delta-stepping"
        assert verdict["delta_stepping"]

    @pytest.mark.parametrize(
        "name", sorted(set(PROGRAMS) - DELTA_STEPPING)
    )
    def test_everything_else_is_ra331(self, capsys, name):
        verdict, codes = self.verdict_of(capsys, name)
        assert "RA331" in codes
        assert verdict["mode"] == "compaction-only"
        assert not verdict["delta_stepping"]

    def test_non_idempotent_aggregate_is_called_out(self, capsys):
        # pagerank's sum fold is order-sensitive under bucketing; the
        # detail must explain the refusal, not just name the mode
        verdict, _ = self.verdict_of(capsys, "pagerank")
        assert "idempotent" in verdict["detail"]
