"""ShardedRun scaffolding and result/counter bookkeeping."""

import pytest

from repro.distributed import Checkpointer, ClusterConfig
from repro.distributed.sharding import ShardedRun
from repro.engine import EvalResult, WorkCounters
from repro.graphs import rmat
from repro.programs import PROGRAMS


@pytest.fixture
def state():
    plan = PROGRAMS["sssp"].plan(rmat(40, 160, seed=3))
    return ShardedRun(plan, ClusterConfig(num_workers=4))


class TestShardedRun:
    def test_every_key_owned_exactly_once(self, state):
        seen = set()
        for worker, keys in enumerate(state.shard_keys):
            assert seen.isdisjoint(keys)
            seen.update(keys)
            for key in keys:
                assert state.owner[key] == worker
        assert seen == set(state.plan.keys)

    def test_seed_initial_delta_lands_on_owners(self, state):
        state.seed_initial_delta()
        for worker, shard in enumerate(state.shards):
            for key in shard.intermediate:
                assert state.owner[key] == worker
        assert state.total_pending() > 0

    def test_merged_values_unions_shards(self, state):
        probes = {}
        for worker, shard in enumerate(state.shards):
            key = min(state.shard_keys[worker])
            shard.accumulated = {key: float(worker + 1)}
            probes[key] = float(worker + 1)
        merged = state.merged_values()
        for key, value in probes.items():
            assert merged[key] == value

    def test_global_accumulation_sums_magnitudes(self, state):
        for shard in state.shards:
            shard.accumulated = {}
        state.shards[0].accumulated = {min(state.shard_keys[0]): 3}
        state.shards[1].accumulated = {min(state.shard_keys[1]): -4}
        assert state.global_accumulation() == 7.0

    def test_checkpoint_roundtrip(self, state, tmp_path):
        state.seed_initial_delta()
        checkpointer = Checkpointer(tmp_path)
        state.checkpoint(checkpointer, "run")

        fresh = ShardedRun(state.plan, state.cluster)
        assert fresh.restore(checkpointer, "run")
        for original, restored in zip(state.shards, fresh.shards):
            assert original.accumulated == restored.accumulated
            assert original.intermediate == restored.intermediate

    def test_restore_missing_returns_false(self, state, tmp_path):
        assert not state.restore(Checkpointer(tmp_path), "never")


class TestWorkCounters:
    def test_merge_sums_and_maxes(self):
        a = WorkCounters(iterations=3, fprime_applications=10, messages=2)
        b = WorkCounters(iterations=5, fprime_applications=7, messages=1)
        a.merge(b)
        assert a.iterations == 5  # max: parallel workers share rounds
        assert a.fprime_applications == 17
        assert a.messages == 3

    def test_snapshot_roundtrip(self):
        counters = WorkCounters(updates=4, barriers=2)
        snapshot = counters.snapshot()
        assert snapshot["updates"] == 4 and snapshot["barriers"] == 2
        assert len(snapshot) == 9


class TestEvalResult:
    def test_value_accessor(self):
        result = EvalResult(values={1: 10}, stop_reason="fixpoint")
        assert result.value(1) == 10
        assert result.value(99) is None
        assert len(result) == 1

    def test_repr_with_and_without_simulated_time(self):
        bare = EvalResult(values={}, stop_reason="fixpoint", engine="e")
        assert "simulated" not in repr(bare)
        timed = EvalResult(
            values={}, stop_reason="epsilon", simulated_seconds=1.5, engine="e"
        )
        assert "simulated=1.500s" in repr(timed)
