"""Interval, linearity and monotonicity analysis."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.expr import (
    Call,
    Interval,
    affine_in,
    const,
    evaluate,
    interval_of,
    is_linear_homogeneous,
    is_monotone_nondecreasing,
    var,
)
from repro.expr.analysis import Sign


class TestInterval:
    def test_point_sign(self):
        assert Interval.point(0.0).sign() is Sign.ZERO
        assert Interval.point(2.0).sign() is Sign.POSITIVE
        assert Interval.point(-2.0).sign() is Sign.NEGATIVE

    def test_strict_lower_bound_is_positive(self):
        assert Interval(0.0, math.inf, lo_strict=True).sign() is Sign.POSITIVE

    def test_nonnegative(self):
        assert Interval(0.0, 5.0).sign() is Sign.NONNEGATIVE

    def test_unknown(self):
        assert Interval(-1.0, 1.0).sign() is Sign.UNKNOWN

    def test_addition(self):
        total = Interval(0, 2) + Interval(1, 3)
        assert (total.lo, total.hi) == (1, 5)

    def test_multiplication_sign_flip(self):
        product = Interval(-2, -1) * Interval(3, 4)
        assert (product.lo, product.hi) == (-8, -3)

    def test_zero_times_infinity(self):
        product = Interval.point(0.0) * Interval.unbounded()
        assert (product.lo, product.hi) == (0.0, 0.0)

    def test_division_guard(self):
        with pytest.raises(ZeroDivisionError):
            Interval(1, 2) / Interval(-1, 1)

    def test_division_by_strictly_positive(self):
        quotient = Interval(1, 2) / Interval(0.0, math.inf, lo_strict=True)
        assert quotient.lo >= 0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(2, 1)


class TestIntervalOf:
    def test_constant(self):
        bound = interval_of(const(3), {})
        assert (bound.lo, bound.hi) == (3, 3)

    def test_declared_domain(self):
        bound = interval_of(var("w"), {"w": Interval(0, 1)})
        assert (bound.lo, bound.hi) == (0, 1)

    def test_relu_range(self):
        bound = interval_of(Call("relu", (var("x"),)), {"x": Interval(-5, 3)})
        assert (bound.lo, bound.hi) == (0, 3)

    def test_tanh_range(self):
        bound = interval_of(Call("tanh", (var("x"),)), {})
        assert bound.lo >= -1 and bound.hi <= 1

    @given(
        x=st.floats(min_value=0.5, max_value=4.0),
        w=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_bound_contains_value(self, x, w):
        expr = const(0.85) * var("x") / (var("w") + 1)
        domains = {"x": Interval(0.5, 4.0), "w": Interval(0.0, 1.0)}
        bound = interval_of(expr, domains)
        value = evaluate(expr, {"x": x, "w": w})
        assert bound.lo - 1e-9 <= value <= bound.hi + 1e-9


class TestAffineIn:
    def test_pagerank_fprime(self):
        expr = const(0.85) * var("rx") / var("d")
        decomposed = affine_in(expr, "rx")
        assert decomposed is not None
        a, b = decomposed
        assert b.num.is_zero()

    def test_affine_with_constant(self):
        decomposed = affine_in(var("x") + var("w"), "x")
        assert decomposed is not None
        _, b = decomposed
        assert not b.num.is_zero()

    def test_quadratic_rejected(self):
        assert affine_in(var("x") * var("x"), "x") is None

    def test_variable_in_denominator_rejected(self):
        assert affine_in(var("w") / var("x"), "x") is None

    def test_variable_inside_call_rejected(self):
        assert affine_in(Call("relu", (var("x"),)), "x") is None


class TestLinearHomogeneous:
    def test_pagerank_passes(self):
        assert is_linear_homogeneous(const(0.85) * var("rx") / var("d"), "rx")

    def test_sssp_fails_for_sum(self):
        # x + w is affine but not homogeneous: fine for min, wrong for sum
        assert not is_linear_homogeneous(var("x") + var("w"), "x")

    def test_relu_fails(self):
        expr = Call("relu", (var("g") * var("p"),)) * var("w")
        assert not is_linear_homogeneous(expr, "g")

    def test_identity_passes(self):
        assert is_linear_homogeneous(var("v"), "v")


class TestMonotone:
    def test_sssp_fprime(self):
        assert is_monotone_nondecreasing(var("dx") + var("dxy"), "dx", {})

    def test_identity(self):
        assert is_monotone_nondecreasing(var("v"), "v", {})

    def test_negation_fails(self):
        assert not is_monotone_nondecreasing(-var("x"), "x", {})

    def test_scaling_needs_sign(self):
        expr = var("p") * var("x")
        assert not is_monotone_nondecreasing(expr, "x", {})
        domains = {"p": Interval(0.0, math.inf)}
        assert is_monotone_nondecreasing(expr, "x", domains)

    def test_division_by_positive(self):
        domains = {"d": Interval(0.0, math.inf, lo_strict=True)}
        assert is_monotone_nondecreasing(var("x") / var("d"), "x", domains)

    def test_division_by_unknown_sign_fails(self):
        assert not is_monotone_nondecreasing(var("x") / var("d"), "x", {})

    def test_monotone_primitive_composes(self):
        domains = {"w": Interval(0.0, 1.0)}
        expr = Call("tanh", (var("x"),)) * var("w")
        assert is_monotone_nondecreasing(expr, "x", domains)

    def test_abs_not_monotone(self):
        assert not is_monotone_nondecreasing(Call("abs", (var("x"),)), "x", {})

    def test_subtraction_direction(self):
        assert is_monotone_nondecreasing(var("x") - var("c"), "x", {})
        assert not is_monotone_nondecreasing(var("c") - var("x"), "x", {})

    def test_reciprocal_of_increasing_is_decreasing(self):
        # c / (x + 1) with c >= 0, x >= 0: non-increasing in x
        domains = {"c": Interval(0, 10), "x": Interval(0, 10)}
        assert not is_monotone_nondecreasing(var("c") / (var("x") + 1), "x", domains)

    @given(
        x1=st.floats(min_value=-10, max_value=10),
        x2=st.floats(min_value=-10, max_value=10),
        w=st.floats(min_value=0.0, max_value=5.0),
    )
    def test_proved_monotone_is_monotone(self, x1, x2, w):
        expr = var("x") * var("w") + 1
        domains = {"w": Interval(0.0, 5.0)}
        assert is_monotone_nondecreasing(expr, "x", domains)
        lo, hi = sorted((x1, x2))
        low_value = evaluate(expr, {"x": lo, "w": w})
        high_value = evaluate(expr, {"x": hi, "w": w})
        assert low_value <= high_value + 1e-12
