"""The CI perf-regression gate (``tools/bench_gate.py``).

The gate's comparison logic is exercised here against the *committed*
baselines without rerunning the benchmarks (CI runs the full gate; this
suite pins the pass/fail semantics cheaply): identical rows pass,
injected counter drift fails, speedup ratios get a tolerance band and
nothing else, and rows for backends absent on this host are skipped
rather than failed.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent

spec = importlib.util.spec_from_file_location(
    "bench_gate", REPO / "tools" / "bench_gate.py"
)
bench_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_gate)

KERNELS = REPO / bench_gate.KERNELS_BASELINE
DELTA = REPO / bench_gate.DELTA_BASELINE


@pytest.fixture
def kernels_baseline():
    return json.loads(KERNELS.read_text())


@pytest.fixture
def delta_baseline():
    return json.loads(DELTA.read_text())


def _copy_rows(baseline):
    return json.loads(json.dumps(baseline["rows"]))


class FakeReport:
    def __init__(self, speedups, sparse_speedups, check_scale=1.0):
        self.speedups = speedups
        self.sparse_speedups = sparse_speedups
        self.check_scale = check_scale


class TestCommittedBaselines:
    """The checked-in files satisfy the gate's own invariants."""

    def test_kernel_baseline_is_byte_stable_shape(self, kernels_baseline):
        # no wall-clock or host-library columns may be committed
        assert "numpy_version" not in kernels_baseline
        for row in kernels_baseline["rows"]:
            assert "seconds" not in row
            assert "numpy" not in row
            assert set(row["work"]) == {
                "combines",
                "updates",
                "fprime_applications",
            }

    def test_kernel_baseline_floors_met(self, kernels_baseline):
        assert kernels_baseline["floors_met"] == {
            "numpy_dense_3x": True,
            "sparse_selective_3x": True,
        }
        assert kernels_baseline["sparse_floor"] == 3.0
        assert set(kernels_baseline["sparse_programs"]) == {"sssp", "cc"}

    def test_kernel_baseline_has_sparse_rows(self, kernels_baseline):
        backends = {row["backend"] for row in kernels_baseline["rows"]}
        assert {"python", "numpy", "sparse"} <= backends

    def test_counters_identical_across_backends(self, kernels_baseline):
        by_cell = {}
        for row in kernels_baseline["rows"]:
            cell = (row["program"], row["scale"])
            by_cell.setdefault(cell, []).append(
                (row["iterations"], row["work"])
            )
        for cell, entries in by_cell.items():
            assert all(entry == entries[0] for entry in entries), cell

    def test_delta_baseline_is_byte_stable_shape(self, delta_baseline):
        for row in delta_baseline["rows"]:
            assert not any(key.endswith("_seconds") for key in row)


class TestKernelComparison:
    def test_identical_rows_pass(self, kernels_baseline):
        rows = _copy_rows(kernels_baseline)
        assert bench_gate.compare_kernel_rows(kernels_baseline, rows) == []

    def test_injected_counter_regression_fails(self, kernels_baseline):
        rows = _copy_rows(kernels_baseline)
        rows[0]["work"]["combines"] += 1
        mismatches = bench_gate.compare_kernel_rows(kernels_baseline, rows)
        assert len(mismatches) == 1
        assert mismatches[0]["column"] == "work"

    def test_injected_iteration_drift_fails(self, kernels_baseline):
        rows = _copy_rows(kernels_baseline)
        rows[-1]["iterations"] += 1
        mismatches = bench_gate.compare_kernel_rows(kernels_baseline, rows)
        assert [m["column"] for m in mismatches] == ["iterations"]

    def test_missing_backend_rows_are_skipped(self, kernels_baseline):
        # a leg without numba has no jit rows; that is not a regression
        rows = [
            row
            for row in _copy_rows(kernels_baseline)
            if row["backend"] != "sparse"
        ]
        assert bench_gate.compare_kernel_rows(kernels_baseline, rows) == []


class TestSpeedupFloors:
    def test_floors_met_within_band_pass(self, kernels_baseline):
        report = FakeReport(
            speedups={p: 10.0 for p in kernels_baseline["dense_programs"]},
            sparse_speedups={
                p: 4.0 for p in kernels_baseline["sparse_programs"]
            },
        )
        assert bench_gate.check_speedup_floors(
            kernels_baseline, report, 0.15
        ) == []

    def test_band_gives_slack_below_floor(self, kernels_baseline):
        # 2.7 >= 3.0 * (1 - 0.15): inside the band, not a regression
        report = FakeReport(
            speedups={p: 10.0 for p in kernels_baseline["dense_programs"]},
            sparse_speedups={
                p: 2.7 for p in kernels_baseline["sparse_programs"]
            },
        )
        assert bench_gate.check_speedup_floors(
            kernels_baseline, report, 0.15
        ) == []

    def test_regression_outside_band_fails(self, kernels_baseline):
        report = FakeReport(
            speedups={p: 10.0 for p in kernels_baseline["dense_programs"]},
            sparse_speedups={
                p: 2.0 for p in kernels_baseline["sparse_programs"]
            },
        )
        failures = bench_gate.check_speedup_floors(
            kernels_baseline, report, 0.15
        )
        assert {f["program"] for f in failures} == set(
            kernels_baseline["sparse_programs"]
        )

    def test_sparse_floor_not_asserted_below_floor_scale(
        self, kernels_baseline
    ):
        report = FakeReport(
            speedups={p: 10.0 for p in kernels_baseline["dense_programs"]},
            sparse_speedups={},
            check_scale=0.5,
        )
        assert bench_gate.check_speedup_floors(
            kernels_baseline, report, 0.15
        ) == []


class TestDeltaComparison:
    def test_identical_rows_pass(self, delta_baseline):
        rows = json.loads(json.dumps(delta_baseline["rows"]))
        assert bench_gate.compare_delta_rows(delta_baseline, rows) == []

    def test_fresh_seconds_are_ignored(self, delta_baseline):
        rows = json.loads(json.dumps(delta_baseline["rows"]))
        for row in rows:
            row["repair_seconds"] = 123.456
        assert bench_gate.compare_delta_rows(delta_baseline, rows) == []

    def test_injected_work_regression_fails(self, delta_baseline):
        rows = json.loads(json.dumps(delta_baseline["rows"]))
        rows[0]["repair_work"] *= 2
        assert len(
            bench_gate.compare_delta_rows(delta_baseline, rows)
        ) == 1
