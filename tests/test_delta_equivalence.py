"""Oracle-backed equivalence: incremental repair == from-scratch evaluation.

The correctness contract of ``repro.delta`` is *exactness*: after any
sequence of graph deltas, the maintained fixpoint must be bit-identical
to what a cold :class:`~repro.engine.MRAEvaluator` run computes on the
mutated graph -- not close, identical.  The suite drives that oracle
comparison three ways:

* a deterministic sweep over every RA32x-eligible registry program, on
  every registered kernel backend, through seeded insert-only and mixed
  insert/delete delta streams;
* hypothesis property tests that randomise the base graph and the delta
  stream, so the claim does not quietly specialise to the fixtures;
* a work-counter assertion (via ``repro.obs``, never wall-clock) that
  insert-only repairs genuinely do less work than recomputation -- the
  whole point of the subsystem.

Scope: ``sssp``/``cc``/``viterbi`` are selective (min/max) programs and
bit-stable by construction; ``dag_paths`` is additive but folds
integers, so it is bit-stable too.  Float-additive ``cost`` is covered
by the unit suite (strategy selection), not by bit-exact properties.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.delta import GraphDelta, IncrementalEngine, random_delta, view_of
from repro.engine import MRAEvaluator
from repro.graphs import random_dag, rmat
from repro.obs import Observability
from repro.programs import PROGRAMS
from repro.runtime import HAVE_NUMPY, available_backends

#: selective-aggregate programs: deletions re-derive (RA320)
SELECTIVE = ("sssp", "cc", "viterbi")
#: integer-additive programs: insert-only fast path (RA321)
ADDITIVE = ("dag_paths",)
ELIGIBLE = SELECTIVE + ADDITIVE

#: every registered backend (python, numpy, sparse, jit when numba is
#: installed): the repair paths must be exact on all of them
BACKENDS = tuple(available_backends())

#: programs compiled over DAGs must stay acyclic under inserts
ACYCLIC = ("viterbi", "dag_paths", "cost")


def base_graph(program: str, seed: int = 7):
    if program in ACYCLIC:
        return random_dag(40, 120, seed=seed)
    return rmat(48, 180, seed=seed)


def oracle(program: str, graph, backend: str) -> dict:
    """The ground truth: a cold evaluation on the mutated graph."""
    plan = PROGRAMS[program].plan(graph)
    return MRAEvaluator(plan, backend=backend).run().values


def delta_stream(program: str, graph, seed: int, steps: int, deletes: bool):
    """Seeded per-step deltas sized relative to the current graph."""
    stream = []
    for step in range(steps):
        inserts = max(1, graph.num_edges // 20)
        removals = max(1, graph.num_edges // 30) if deletes else 0
        delta = random_delta(
            graph,
            seed=seed * 101 + step,
            insert_edges=inserts,
            delete_edges=removals,
            acyclic=program in ACYCLIC,
        )
        stream.append(delta)
        graph = delta.apply_to(graph)
    return stream


# -- deterministic sweep ------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("program", ELIGIBLE)
def test_insert_stream_matches_oracle(program, backend):
    graph = base_graph(program)
    engine = IncrementalEngine(program, graph, backend=backend)
    engine.bootstrap()
    for delta in delta_stream(program, graph, seed=3, steps=4, deletes=False):
        repair = engine.apply(delta)
        # inserts never force a full recompute on an eligible program
        assert repair.strategy in ("frontier", "rederive")
        assert engine.values == oracle(program, engine.view.graph, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("program", ELIGIBLE)
def test_mixed_stream_matches_oracle(program, backend):
    graph = base_graph(program)
    engine = IncrementalEngine(program, graph, backend=backend)
    engine.bootstrap()
    for delta in delta_stream(program, graph, seed=11, steps=4, deletes=True):
        engine.apply(delta)
        assert engine.values == oracle(program, engine.view.graph, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("program", SELECTIVE)
def test_weight_updates_match_oracle(program, backend):
    graph = base_graph(program)
    engine = IncrementalEngine(program, graph, backend=backend)
    engine.bootstrap()
    for step in range(3):
        delta = random_delta(
            engine.view.graph, seed=23 + step, update_weights=4
        )
        engine.apply(delta)
        assert engine.values == oracle(program, engine.view.graph, backend)


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy backend not installed")
@pytest.mark.parametrize("program", ("sssp", "dag_paths"))
def test_backends_agree_after_repairs(program):
    graph = base_graph(program)
    engines = {
        backend: IncrementalEngine(program, base_graph(program), backend=backend)
        for backend in BACKENDS
    }
    for engine in engines.values():
        engine.bootstrap()
    for delta in delta_stream(program, graph, seed=5, steps=3, deletes=True):
        results = {
            backend: engine.apply(delta)
            for backend, engine in engines.items()
        }
        reference = results["python"]
        for backend, repair in results.items():
            assert repair.strategy == reference.strategy, backend
            assert engines[backend].values == engines["python"].values


# -- hypothesis properties ----------------------------------------------------

_PROPERTY_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_PROPERTY_SETTINGS
@given(
    graph_seed=st.integers(min_value=0, max_value=10**6),
    delta_seed=st.integers(min_value=0, max_value=10**6),
    steps=st.integers(min_value=1, max_value=3),
    program=st.sampled_from(ELIGIBLE),
)
def test_property_insert_only_repair_is_exact(
    graph_seed, delta_seed, steps, program
):
    graph = base_graph(program, seed=graph_seed)
    engine = IncrementalEngine(program, graph)
    engine.bootstrap()
    for delta in delta_stream(
        program, graph, seed=delta_seed, steps=steps, deletes=False
    ):
        engine.apply(delta)
    assert engine.values == oracle(program, engine.view.graph, "python")


@_PROPERTY_SETTINGS
@given(
    graph_seed=st.integers(min_value=0, max_value=10**6),
    delta_seed=st.integers(min_value=0, max_value=10**6),
    program=st.sampled_from(SELECTIVE),
)
def test_property_deletion_rederive_is_exact(graph_seed, delta_seed, program):
    graph = base_graph(program, seed=graph_seed)
    engine = IncrementalEngine(program, graph)
    engine.bootstrap()
    delta = random_delta(
        engine.view.graph,
        seed=delta_seed,
        delete_edges=max(1, engine.view.graph.num_edges // 25),
        acyclic=program in ACYCLIC,
    )
    engine.apply(delta)
    assert engine.values == oracle(program, engine.view.graph, "python")


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy backend not installed")
@_PROPERTY_SETTINGS
@given(
    graph_seed=st.integers(min_value=0, max_value=10**6),
    delta_seed=st.integers(min_value=0, max_value=10**6),
    program=st.sampled_from(ELIGIBLE),
    backend=st.sampled_from([b for b in BACKENDS if b != "python"] or ["python"]),
)
def test_property_vectorized_backends_are_exact(
    graph_seed, delta_seed, program, backend
):
    graph = base_graph(program, seed=graph_seed)
    engine = IncrementalEngine(program, graph, backend=backend)
    engine.bootstrap()
    delta = random_delta(
        graph,
        seed=delta_seed,
        insert_edges=max(1, graph.num_edges // 20),
        acyclic=program in ACYCLIC,
    )
    engine.apply(delta)
    assert engine.values == oracle(program, engine.view.graph, backend)


# -- work accounting (the acceptance criterion) -------------------------------


@pytest.mark.parametrize("program", ("sssp", "cc"))
def test_insert_repair_does_less_work_than_recompute(program):
    """Insert-only repairs must beat recompute on ``work.*`` counters
    (measured through ``repro.obs``, never wall-clock)."""
    graph = base_graph(program)
    delta = random_delta(graph, seed=3, insert_edges=max(1, graph.num_edges // 100))

    inc_obs = Observability()
    engine = IncrementalEngine(program, graph, obs=inc_obs)
    engine.bootstrap()
    repair = engine.apply(delta)
    assert repair.strategy == "frontier"

    scratch_obs = Observability()
    plan = PROGRAMS[program].plan(engine.view.graph)
    MRAEvaluator(plan, obs=scratch_obs).run()

    for counter in ("work.fprime_applications", "work.combines"):
        repaired = inc_obs.metrics.counter_value(counter, engine="incremental")
        recomputed = scratch_obs.metrics.counter_value(counter, engine="mra")
        assert recomputed > 0
        # "measurably less": at most half the from-scratch work
        assert repaired <= recomputed / 2, (
            f"{counter}: repair did {repaired}, recompute did {recomputed}"
        )


def test_repair_metrics_and_trace_surface_in_obs():
    obs = Observability()
    graph = base_graph("sssp")
    engine = IncrementalEngine("sssp", graph, obs=obs)
    engine.bootstrap()
    delta = random_delta(graph, seed=9, insert_edges=4)
    engine.apply(delta)

    metrics = obs.metrics
    assert metrics.counter_value(
        "delta.repairs", strategy="frontier", program="sssp"
    ) == 1
    assert metrics.counter_total("delta.plan_edges_added") > 0
    assert metrics.counter_total("delta.frontier_seeds") > 0
    assert metrics.counter_value(
        "work.updates", engine="incremental"
    ) == metrics.counter_total("work.updates") - metrics.counter_value(
        "work.updates", engine="mra"
    )
    events = [e for e in obs.trace.events if e["kind"] == "delta.repair"]
    assert len(events) == 1
    assert events[0]["strategy"] == "frontier"
    assert events[0]["stop"] == "fixpoint"


def test_deletion_on_additive_program_recomputes_but_stays_exact():
    # dag_paths is RA321: deletions are outside the certified strategies,
    # so the engine falls back to recompute -- and must still be exact
    graph = base_graph("dag_paths")
    engine = IncrementalEngine("dag_paths", graph)
    engine.bootstrap()
    delta = random_delta(graph, seed=13, delete_edges=3, acyclic=True)
    repair = engine.apply(delta)
    assert repair.strategy == "recompute"
    assert engine.values == oracle("dag_paths", engine.view.graph, "python")
