"""Expression tree construction and manipulation."""

from fractions import Fraction

import pytest

from repro.expr import Add, Call, Const, Div, Mul, Neg, Sub, const, var


class TestConstruction:
    def test_const_from_int(self):
        assert const(3).value == Fraction(3)

    def test_const_from_float_is_exact_decimal(self):
        assert const(0.85).value == Fraction(17, 20)

    def test_const_from_fraction(self):
        assert const(Fraction(1, 3)).value == Fraction(1, 3)

    def test_var_name(self):
        assert var("dx").name == "dx"

    def test_operator_overloading_builds_nodes(self):
        x, w = var("x"), var("w")
        expr = (x + w) * 2 - x / w
        assert isinstance(expr, Sub)
        assert isinstance(expr.left, Mul)
        assert isinstance(expr.right, Div)

    def test_reflected_operators(self):
        x = var("x")
        assert isinstance(1 + x, Add)
        assert isinstance(1 - x, Sub)
        assert isinstance(2 * x, Mul)
        assert isinstance(2 / x, Div)

    def test_negation(self):
        assert isinstance(-var("x"), Neg)

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            Call("frobnicate", (var("x"),))

    def test_known_function_accepted(self):
        call = Call("relu", (var("x"),))
        assert call.func == "relu"

    def test_non_expression_operand_rejected(self):
        with pytest.raises(TypeError):
            var("x") + "not an expression"


class TestStructuralEquality:
    def test_equal_trees_compare_equal(self):
        assert var("x") + 1 == var("x") + 1

    def test_different_trees_differ(self):
        assert var("x") + 1 != var("x") + 2

    def test_hashable(self):
        seen = {var("x") * 2, var("x") * 2}
        assert len(seen) == 1


class TestFreeVars:
    def test_single_var(self):
        assert var("x").free_vars() == {"x"}

    def test_nested(self):
        expr = Call("relu", (var("g") * var("p"),)) * var("w")
        assert expr.free_vars() == {"g", "p", "w"}

    def test_const_has_none(self):
        assert const(5).free_vars() == set()


class TestSubstitute:
    def test_replaces_variable(self):
        expr = var("x") + var("y")
        replaced = expr.substitute({"x": const(2)})
        assert replaced == const(2) + var("y")

    def test_accepts_plain_numbers(self):
        expr = var("x") * var("x")
        replaced = expr.substitute({"x": 3})
        assert replaced == Const(Fraction(3)) * Const(Fraction(3))

    def test_substitute_inside_call(self):
        expr = Call("relu", (var("x"),))
        replaced = expr.substitute({"x": var("y")})
        assert replaced == Call("relu", (var("y"),))

    def test_untouched_variables_remain(self):
        expr = var("x") + var("y")
        assert expr.substitute({"z": 1}) == expr


class TestContainsCall:
    def test_plain_arithmetic(self):
        assert not (var("x") * 2 + 1).contains_call()

    def test_with_call(self):
        assert (Call("tanh", (var("x"),)) * var("w")).contains_call()


class TestRepr:
    def test_integer_const(self):
        assert repr(const(7)) == "7"

    def test_decimal_const(self):
        assert repr(const(0.85)) == "0.85"

    def test_expression(self):
        assert repr(var("a") + var("b")) == "(a + b)"

    def test_call(self):
        assert repr(Call("relu", (var("x"),))) == "relu(x)"
