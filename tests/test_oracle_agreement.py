"""Engine results vs independent oracles, for all twelve programs."""

import pytest

from repro import reference
from repro.engine import MRAEvaluator
from repro.graphs import random_dag, rmat
from repro.programs import PROGRAMS, builders


def assert_agrees(program: str, graph, oracle: dict, tolerance: float = 1e-4):
    plan = PROGRAMS[program].plan(graph)
    values = MRAEvaluator(plan).run().values
    for key, expected in oracle.items():
        got = values.get(key)
        if got is None:
            assert abs(expected) <= tolerance, (key, expected)
            continue
        assert got == pytest.approx(expected, abs=tolerance), (key, got, expected)


@pytest.fixture(scope="module")
def graph():
    return rmat(60, 240, seed=9, name="oracle-graph")


@pytest.fixture(scope="module")
def dag():
    return random_dag(40, 120, seed=10, name="oracle-dag")


class TestVertexPrograms:
    def test_sssp_vs_dijkstra(self, graph):
        assert_agrees("sssp", graph, reference.dijkstra_sssp(graph), tolerance=0)

    def test_cc_vs_union_find(self, graph):
        assert_agrees("cc", graph, reference.union_find_components(graph), tolerance=0)

    def test_pagerank_vs_linear_solve(self, graph):
        assert_agrees("pagerank", graph, reference.dense_pagerank(graph), tolerance=5e-3)

    def test_adsorption_vs_linear_solve(self, graph):
        assert_agrees(
            "adsorption", graph, reference.dense_adsorption(graph), tolerance=5e-3
        )

    def test_katz_vs_linear_solve(self, graph):
        # scores are O(1000); tolerance is relative to that scale
        assert_agrees("katz", graph, reference.dense_katz(graph), tolerance=1.0)


class TestDagPrograms:
    def test_path_counts(self, dag):
        assert_agrees("dag_paths", dag, reference.dag_path_counts(dag), tolerance=0)

    def test_path_costs(self, dag):
        assert_agrees("cost", dag, reference.dag_path_costs(dag), tolerance=1e-6)

    def test_viterbi(self, dag):
        assert_agrees("viterbi", dag, reference.viterbi_best_path(dag), tolerance=1e-12)


class TestPairPrograms:
    def test_apsp_vs_floyd_warshall(self):
        graph = rmat(14, 42, seed=11)
        assert_agrees("apsp", graph, reference.floyd_warshall_apsp(graph), tolerance=0)

    def test_simrank_vs_matrix_series(self):
        graph = rmat(14, 42, seed=11)
        assert_agrees("simrank", graph, reference.simrank_series(graph), tolerance=5e-3)

    def test_bp_vs_linear_solve(self):
        graph = rmat(25, 80, seed=12)
        db = builders.bp_db(graph)
        beliefs0 = {(v, c): b for (v, c, b) in db.relation("beliefs0")}
        coupling = {(c1, c2): h for (c1, c2, h) in db.relation("h")}
        oracle = reference.dense_belief_propagation(graph, beliefs0, coupling)
        assert_agrees("bp", graph, oracle, tolerance=5e-3)

    def test_lca_vs_parent_walk(self):
        graph = rmat(50, 200, seed=13)
        db = builders.tree_db(graph)
        parent_of = {child: parent for (child, parent) in db.relation("parent")}
        queries = [q for (q,) in db.relation("query")]
        oracle = reference.lca_ancestor_distances(parent_of, queries)
        assert_agrees("lca", graph, oracle, tolerance=0)

    def test_lca_recovers_a_common_ancestor(self):
        graph = rmat(50, 200, seed=13)
        db = builders.tree_db(graph)
        parent_of = {child: parent for (child, parent) in db.relation("parent")}
        queries = [q for (q,) in db.relation("query")]
        plan = PROGRAMS["lca"].plan(graph)
        distances = MRAEvaluator(plan).run().values
        a, b = queries
        common = {z for (q, z) in distances if q == a} & {
            z for (q, z) in distances if q == b
        }
        assert common, "query vertices share the BFS-tree root"
        lca = min(common, key=lambda z: distances[(a, z)] + distances[(b, z)])
        # the LCA must be an ancestor of both by the oracle too
        oracle = reference.lca_ancestor_distances(parent_of, queries)
        assert (a, lca) in oracle and (b, lca) in oracle
