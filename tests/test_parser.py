"""Parser coverage: rules, heads, bodies, termination, assume, errors."""

from fractions import Fraction

import pytest

from repro.datalog import (
    AggregateSpec,
    IterationNext,
    NumberConstant,
    ParseError,
    TerminationAtom,
    Wildcard,
    parse_program,
)
from repro.expr import Call, Var
from repro.programs import PROGRAMS


class TestHeads:
    def test_plain_head(self, sssp_source):
        program = parse_program(sssp_source)
        base = program.rules[0]
        assert base.head.name == "sssp"
        assert base.head.aggregate is None

    def test_aggregate_head(self, sssp_source):
        program = parse_program(sssp_source)
        recursive = program.rules[1]
        spec = recursive.head.aggregate
        assert spec == AggregateSpec("min", "dy")

    def test_iteration_next_in_head(self, pagerank_source):
        program = parse_program(pagerank_source)
        recursive = program.rules_for("rank")[1]
        assert isinstance(recursive.head.terms[0], IterationNext)

    def test_number_constant_head_term(self, pagerank_source):
        program = parse_program(pagerank_source)
        base = program.rules_for("rank")[0]
        assert base.head.terms[0] == NumberConstant(Fraction(0))


class TestBodies:
    def test_multiple_bodies(self, pagerank_source):
        program = parse_program(pagerank_source)
        recursive = program.rules_for("rank")[1]
        assert len(recursive.bodies) == 2

    def test_wildcard(self, cc_source):
        program = parse_program(cc_source)
        atom = program.rules[0].bodies[0].predicate_atoms()[0]
        assert isinstance(atom.terms[1], Wildcard)

    def test_comparison_as_assignment(self, sssp_source):
        program = parse_program(sssp_source)
        comparisons = program.rules[0].bodies[0].comparison_atoms()
        assert len(comparisons) == 2
        assert all(c.op == "=" for c in comparisons)

    def test_arithmetic_expression(self, sssp_source):
        program = parse_program(sssp_source)
        definition = program.rules[1].bodies[0].comparison_atoms()[0]
        assert definition.left == Var("dy")
        assert definition.right == Var("dx") + Var("dxy")

    def test_function_call_in_expression(self):
        program = parse_program(
            "gcn(Y, sum[g1]) :- gcn(X, g), a(X, Y, w), g1 = relu(g) * w."
        )
        definition = program.rules[0].bodies[0].comparison_atoms()[0]
        assert definition.right == Call("relu", (Var("g"),)) * Var("w")

    def test_negative_constant_term(self):
        from repro.expr import evaluate

        program = parse_program("p(X, v) :- X = 1, v = -3.")
        comparison = program.rules[0].bodies[0].comparison_atoms()[1]
        assert evaluate(comparison.right, {}) == -3


class TestTermination:
    def test_clause_parsed(self, pagerank_source):
        program = parse_program(pagerank_source)
        recursive = program.rules_for("rank")[1]
        clauses = [
            atom
            for body in recursive.bodies
            for atom in body.termination_atoms()
        ]
        assert clauses == [
            TerminationAtom("sum", "delta", "<", Fraction(1, 10000))
        ]

    def test_rejects_greater_than(self):
        with pytest.raises(ParseError, match="termination"):
            parse_program("a(X, sum[v]) :- a(Y, v), e(Y, X), {sum[d] > 1}.")

    def test_rejects_unknown_aggregate(self):
        with pytest.raises(ParseError, match="unknown aggregate"):
            parse_program("a(X, sum[v]) :- a(Y, v), e(Y, X), {median[d] < 1}.")


class TestAssume:
    def test_declaration(self, pagerank_source):
        program = parse_program(pagerank_source)
        assert len(program.assumptions) == 1
        decl = program.assumptions[0]
        assert (decl.variable, decl.op, decl.bound) == ("d", ">", 0)

    def test_negative_bound(self):
        program = parse_program("assume x >= -2.\na(X, v) :- X = 1, v = 0.")
        assert program.assumptions[0].bound == -2


class TestFacts:
    def test_bodyless_rule(self):
        program = parse_program("seed(3, 0).")
        rule = program.rules[0]
        assert not rule.bodies
        assert rule.head.terms == (
            NumberConstant(Fraction(3)),
            NumberConstant(Fraction(0)),
        )


class TestErrors:
    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_program("a(X) :- b(X)")

    def test_dangling_body(self):
        with pytest.raises(ParseError):
            parse_program("a(X) :- .")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(ParseError):
            parse_program("a(X :- b(X).")

    def test_expression_where_term_expected(self):
        with pytest.raises(ParseError):
            parse_program("a(X + Y) :- b(X), c(Y).")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as exc:
            parse_program("a(X) :-\n ;.")
        assert exc.value.line == 2


class TestAllLibraryProgramsParse:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_parses(self, name):
        program = PROGRAMS[name].parse()
        assert program.rules

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_repr_reparses(self, name):
        """Pretty-printed programs are themselves valid Datalog."""
        program = PROGRAMS[name].parse()
        reparsed = parse_program(repr(program), name=name)
        assert len(reparsed.rules) == len(program.rules)
        assert reparsed.assumptions == program.assumptions
