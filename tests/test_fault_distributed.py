"""Fault tolerance wired into the sync engine: checkpoint + resume."""

import pytest

from repro.distributed import Checkpointer, ClusterConfig, SyncEngine
from repro.engine import MRAEvaluator
from repro.engine.termination import TerminationSpec
from repro.graphs import rmat
from repro.programs import PROGRAMS


@pytest.fixture
def graph():
    return rmat(60, 300, seed=81, name="ft-graph")


class TestCheckpointedRun:
    def test_checkpoints_written(self, graph, tmp_path):
        plan = PROGRAMS["sssp"].plan(graph)
        checkpointer = Checkpointer(tmp_path)
        cluster = ClusterConfig(num_workers=4)
        SyncEngine(
            plan,
            cluster,
            checkpointer=checkpointer,
            checkpoint_every=1,
            run_name="ft",
        ).run()
        for shard_id in range(cluster.num_workers):
            assert checkpointer.has_checkpoint("ft", shard_id)

    def test_resume_after_simulated_crash(self, graph, tmp_path):
        plan = PROGRAMS["sssp"].plan(graph)
        expected = MRAEvaluator(plan).run().values
        checkpointer = Checkpointer(tmp_path)
        cluster = ClusterConfig(num_workers=4)

        # "crash" after two supersteps: run with a hard iteration cap
        partial = SyncEngine(
            plan,
            cluster,
            termination=TerminationSpec(max_iterations=2),
            checkpointer=checkpointer,
            checkpoint_every=1,
            run_name="crash",
        ).run()
        assert partial.stop_reason == "iteration-limit"
        assert partial.values != expected  # genuinely unfinished

        # recovery: a fresh engine resumes from the checkpoint
        recovered = SyncEngine(
            plan,
            cluster,
            checkpointer=checkpointer,
            run_name="crash",
        ).run()
        assert recovered.values == expected
        # resumed run does strictly less work than a from-scratch run
        fresh = SyncEngine(plan, cluster).run()
        assert (
            recovered.counters.fprime_applications
            < fresh.counters.fprime_applications
        )

    def test_checkpoint_every_requires_checkpointer(self, graph):
        plan = PROGRAMS["sssp"].plan(graph)
        with pytest.raises(ValueError, match="requires a checkpointer"):
            SyncEngine(plan, checkpoint_every=2)

    def test_missing_checkpoint_starts_fresh(self, graph, tmp_path):
        plan = PROGRAMS["sssp"].plan(graph)
        expected = MRAEvaluator(plan).run().values
        result = SyncEngine(
            plan,
            ClusterConfig(num_workers=4),
            checkpointer=Checkpointer(tmp_path),
            run_name="never-saved",
        ).run()
        assert result.values == expected


class TestTornCheckpointSet:
    """A crash *between* ``save_shard`` calls leaves shard files from
    different epochs; restore must still converge (idempotent replay)."""

    def test_mixed_epoch_restore_converges(self, graph, tmp_path):
        import os

        plan = PROGRAMS["sssp"].plan(graph)
        expected = MRAEvaluator(plan).run().values
        cluster = ClusterConfig(num_workers=4)
        checkpointer = Checkpointer(tmp_path)

        # epoch-1 checkpoints under one run name...
        SyncEngine(
            plan,
            cluster,
            termination=TerminationSpec(max_iterations=1),
            checkpointer=checkpointer,
            checkpoint_every=1,
            run_name="early",
        ).run()
        # ...epoch-3 checkpoints under another
        SyncEngine(
            plan,
            cluster,
            termination=TerminationSpec(max_iterations=3),
            checkpointer=checkpointer,
            checkpoint_every=1,
            run_name="late",
        ).run()
        # splice: shard 0 from epoch 1, shards 1-3 from epoch 3 -- the
        # on-disk picture a crash between save_shard calls leaves behind
        os.replace(
            checkpointer._path("early", 0), checkpointer._path("late", 0)
        )

        recovered = SyncEngine(
            plan, cluster, checkpointer=checkpointer, run_name="late"
        ).run()
        assert recovered.values == expected
