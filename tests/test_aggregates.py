"""Aggregate operators: algebra, inverses, runtime predicates."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.aggregates import (
    BUILTIN_AGGREGATES,
    COUNT,
    MAX,
    MEAN,
    MIN,
    SUM,
    AggregateKind,
    get_aggregate,
)

values = st.fractions(min_value=-50, max_value=50, max_denominator=32)
COMMUTATIVE_ASSOCIATIVE = [MIN, MAX, SUM, COUNT]


class TestRegistry:
    def test_all_builtins_present(self):
        assert set(BUILTIN_AGGREGATES) == {
            "min",
            "max",
            "sum",
            "count",
            "or",
            "best",
            "topk",
            "mean",
        }

    def test_lookup(self):
        assert get_aggregate("min") is MIN

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown aggregate"):
            get_aggregate("median")


class TestAlgebraicLaws:
    """Validate the metadata the structural prover trusts (section 5.1)."""

    @pytest.mark.parametrize("aggregate", COMMUTATIVE_ASSOCIATIVE, ids=lambda a: a.name)
    @given(a=values, b=values)
    def test_commutativity(self, aggregate, a, b):
        assert aggregate.combine(a, b) == aggregate.combine(b, a)

    @pytest.mark.parametrize("aggregate", COMMUTATIVE_ASSOCIATIVE, ids=lambda a: a.name)
    @given(a=values, b=values, c=values)
    def test_associativity(self, aggregate, a, b, c):
        left = aggregate.combine(aggregate.combine(a, b), c)
        right = aggregate.combine(a, aggregate.combine(b, c))
        assert left == right

    def test_mean_fails_associativity(self):
        a, b, c = Fraction(0), Fraction(0), Fraction(3)
        left = MEAN.combine(MEAN.combine(a, b), c)
        right = MEAN.combine(a, MEAN.combine(b, c))
        assert left != right

    @pytest.mark.parametrize("aggregate", [MIN, MAX], ids=lambda a: a.name)
    @given(a=values)
    def test_selective_idempotence(self, aggregate, a):
        assert aggregate.combine(a, a) == a

    @pytest.mark.parametrize("aggregate", COMMUTATIVE_ASSOCIATIVE, ids=lambda a: a.name)
    @given(a=values)
    def test_identity_element(self, aggregate, a):
        assert aggregate.combine(aggregate.identity, a) == a


class TestInverse:
    """``G⁻`` of section 3.3: the delta that recreates the new value."""

    @given(new=values, old=values)
    def test_min_subtract_recombines(self, new, old):
        delta = MIN.subtract(new, old)
        if delta is None:
            # no delta needed: combining nothing keeps old >= new invalid
            assert MIN.combine(old, new) == old
        else:
            assert MIN.combine(old, delta) == min(new, old)

    @given(new=values, old=values)
    def test_sum_subtract_recombines(self, new, old):
        delta = SUM.subtract(new, old)
        if delta is None:
            assert new == old
        else:
            assert SUM.combine(old, delta) == new

    @given(new=values, old=values)
    def test_max_subtract_recombines(self, new, old):
        delta = MAX.subtract(new, old)
        if delta is None:
            assert MAX.combine(old, new) == old
        else:
            assert MAX.combine(old, delta) == max(new, old)

    def test_subtract_against_missing_old(self):
        assert MIN.subtract(5, None) == 5
        assert SUM.subtract(5, None) == 5


class TestRuntimePredicates:
    def test_improves_min(self):
        assert MIN.improves(5, 3)
        assert not MIN.improves(3, 5)
        assert MIN.improves(None, 10)

    def test_improves_sum(self):
        assert SUM.improves(5, 1)
        assert not SUM.improves(5, 0)

    def test_delta_magnitude(self):
        assert SUM.delta_magnitude(-3) == 3.0
        assert SUM.delta_magnitude(None) == 0.0

    def test_combine_many(self):
        assert MIN.combine_many([3, 1, 2]) == 1
        assert SUM.combine_many([3, 1, 2]) == 6

    def test_combine_many_empty_min_raises(self):
        # min's identity is +inf, which is a fine result for "no inputs"
        assert MIN.combine_many([]) == math.inf

    def test_combine_many_empty_mean_raises(self):
        with pytest.raises(ValueError):
            MEAN.combine_many([])

    def test_kinds(self):
        assert MIN.kind is AggregateKind.SELECTIVE
        assert SUM.kind is AggregateKind.ADDITIVE
        assert MEAN.kind is AggregateKind.OTHER


class TestCombineManyFold:
    """The left-fold contract: single pass, identity honored, order pinned."""

    def test_single_pass_over_one_shot_iterator(self):
        # an identity-free aggregate must still fold a generator lazily
        # (the old implementation could not distinguish "no identity"
        # from "nothing seen yet" without a second materialization)
        seen = []

        def stream():
            for v in (4.0, 8.0, 2.0):
                seen.append(v)
                yield v

        assert MEAN.combine_many(stream()) == MEAN.combine(MEAN.combine(4.0, 8.0), 2.0)
        assert seen == [4.0, 8.0, 2.0]

    def test_fold_order_non_commutative(self):
        # pin strict left-fold order with a deliberately non-commutative ⊕
        from repro.aggregates import Aggregate

        concat = Aggregate(
            name="concat",
            kind=AggregateKind.OTHER,
            identity=None,
            combine=lambda a, b: f"({a}.{b})",
            subtract=lambda new, old: None,
            is_commutative=False,
            is_associative=True,
        )
        assert concat.combine_many(iter("abc")) == "((a.b).c)"

    def test_empty_input_yields_identity_when_present(self):
        assert SUM.combine_many(iter(())) == 0
        assert MIN.combine_many(iter(())) == math.inf

    def test_identity_start_unchanged_for_semiring_folds(self):
        # starting from the first value is equivalent to starting from 0̄
        assert MIN.combine_many([5]) == MIN.combine(MIN.identity, 5)
        assert SUM.combine_many([5]) == SUM.combine(SUM.identity, 5)
