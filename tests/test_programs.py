"""The program registry and its database builders."""

import pytest

from repro.graphs import random_dag, rmat
from repro.programs import PROGRAMS, benchmark_programs, get_program, program_names
from repro.programs import builders


class TestRegistry:
    def test_registry_size(self):
        # 14 Table-1 programs + 4 semiring-family extensions
        assert len(PROGRAMS) == 18

    def test_table1_split(self):
        passing = [n for n, s in PROGRAMS.items() if s.expected_mra]
        failing = [n for n, s in PROGRAMS.items() if not s.expected_mra]
        assert len(passing) == 16
        assert sorted(failing) == ["commnet", "gcn"]

    def test_benchmarked_six(self):
        assert benchmark_programs() == [
            "sssp", "cc", "pagerank", "adsorption", "katz", "bp",
        ]

    def test_get_program(self):
        assert get_program("sssp").title == "SSSP"

    def test_unknown_program(self):
        with pytest.raises(KeyError, match="unknown program"):
            get_program("bfs")

    def test_program_names_order(self):
        assert program_names()[0] == "sssp"

    def test_aggregator_column_matches_table1(self):
        expected = {
            "sssp": "min", "cc": "min", "pagerank": "sum",
            "adsorption": "sum", "katz": "sum", "bp": "sum",
            "dag_paths": "count", "cost": "sum", "viterbi": "max",
            "simrank": "sum", "lca": "min", "apsp": "min",
            "commnet": "sum", "gcn": "sum",
            "why_reach": "or", "path_count": "sum",
            "kpaths": "topk", "reach_prob": "best",
        }
        assert {n: s.aggregator for n, s in PROGRAMS.items()} == expected


class TestBuilders:
    @pytest.fixture
    def graph(self):
        return rmat(30, 120, seed=61)

    def test_weighted_db(self, graph):
        db = builders.weighted_graph_db(graph)
        assert db.relation("edge").arity == 3

    def test_symmetrized_db(self, graph):
        db = builders.symmetrized_db(graph)
        edges = set(db.relation("edge"))
        assert all((dst, src) in edges for src, dst in edges)

    def test_adsorption_db_normalised(self, graph):
        db = builders.adsorption_db(graph)
        outgoing: dict = {}
        for src, _, weight in db.relation("a"):
            outgoing[src] = outgoing.get(src, 0.0) + weight
        for total in outgoing.values():
            assert total == pytest.approx(1.0)

    def test_katz_db_has_source(self, graph):
        db = builders.katz_db(graph)
        assert (0, 1000.0) in db.relation("src")

    def test_bp_db_coupling_rows(self, graph):
        db = builders.bp_db(graph)
        assert len(db.relation("h")) == 4
        beliefs = {(v, c): b for v, c, b in db.relation("beliefs0")}
        for v in graph.vertices():
            assert beliefs[(v, 0)] + beliefs[(v, 1)] == pytest.approx(1.0)

    def test_probability_dag_weights_in_unit_interval(self):
        dag = random_dag(20, 60, seed=62)
        db = builders.probability_dag_db(dag)
        assert all(0 < w <= 1 for _, _, w in db.relation("edge"))

    def test_tree_db_is_a_tree(self, graph):
        db = builders.tree_db(graph)
        children = [child for child, _ in db.relation("parent")]
        assert len(children) == len(set(children))  # one parent each
        assert len(db.relation("query")) == 2

    def test_simrank_db_in_weights(self, graph):
        db = builders.simrank_db(graph)
        incoming: dict = {}
        for _, vertex, weight in db.relation("pred"):
            incoming[vertex] = incoming.get(vertex, 0.0) + weight
        for total in incoming.values():
            assert total == pytest.approx(1.0)

    def test_embedding_db_features(self, graph):
        db = builders.embedding_db(graph)
        assert len(db.relation("feat")) == graph.num_vertices
        assert all(-1 <= f <= 1 for _, f in db.relation("feat"))


class TestPlansCompile:
    @pytest.mark.parametrize(
        "name", [n for n in PROGRAMS if PROGRAMS[n].key_domain == "vertex"]
    )
    def test_vertex_programs_compile(self, name):
        graph = rmat(25, 100, seed=63)
        if name in ("dag_paths", "cost", "viterbi", "path_count"):
            graph = random_dag(25, 80, seed=63)
        plan = PROGRAMS[name].plan(graph)
        assert plan.keys
