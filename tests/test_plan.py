"""Plan compilation: pre-joined edges, parameters, broadcast keys."""


from repro.datalog import analyze, parse_program
from repro.engine import compile_plan
from repro.programs import PROGRAMS


class TestSSSPPlan:
    def test_edges_carry_weights(self, diamond_db, sssp_source):
        plan = compile_plan(analyze(parse_program(sssp_source)), diamond_db)
        assert plan.num_edges == 5
        targets = {(dst, params) for dst, params, _ in plan.edges_from(1)}
        assert (2, (4,)) in targets
        assert (3, (1,)) in targets

    def test_initial_from_base_rule(self, diamond_db, sssp_source):
        plan = compile_plan(analyze(parse_program(sssp_source)), diamond_db)
        assert plan.initial == {1: 0}

    def test_no_constants(self, diamond_db, sssp_source):
        plan = compile_plan(analyze(parse_program(sssp_source)), diamond_db)
        assert plan.constants == {}

    def test_keys_cover_all_vertices(self, diamond_db, sssp_source):
        plan = compile_plan(analyze(parse_program(sssp_source)), diamond_db)
        assert plan.keys == frozenset({1, 2, 3, 4})

    def test_fprime_fn_compiled(self, diamond_db, sssp_source):
        plan = compile_plan(analyze(parse_program(sssp_source)), diamond_db)
        assert plan.fprime_fn(10, 4) == 14


class TestPageRankPlan:
    def test_auxiliary_degree_joined_into_params(self, triangle_db, pagerank_source):
        plan = compile_plan(analyze(parse_program(pagerank_source)), triangle_db)
        # vertex 2 has out-degree 2: its edges carry d=2
        params = {params for _, params, _ in plan.edges_from(2)}
        assert params == {(2,)}

    def test_constants_per_key(self, triangle_db, pagerank_source):
        plan = compile_plan(analyze(parse_program(pagerank_source)), triangle_db)
        assert plan.constants == {1: 0.15, 2: 0.15, 3: 0.15}

    def test_initial_zero(self, triangle_db, pagerank_source):
        plan = compile_plan(analyze(parse_program(pagerank_source)), triangle_db)
        assert plan.initial == {1: 0, 2: 0, 3: 0}

    def test_termination_from_clause(self, triangle_db, pagerank_source):
        plan = compile_plan(analyze(parse_program(pagerank_source)), triangle_db)
        assert plan.termination.epsilon == 1e-4


class TestBroadcastKeys:
    """APSP/LCA: the pair key's first column never appears in the joins."""

    def test_apsp_edges_expanded_per_source(self, pair_graph):
        plan = PROGRAMS["apsp"].plan(pair_graph)
        n = pair_graph.num_vertices
        assert plan.num_edges == n * pair_graph.num_edges

    def test_apsp_edge_structure(self, pair_graph):
        plan = PROGRAMS["apsp"].plan(pair_graph)
        src, dst, weight = next(iter(pair_graph.weighted_edges()))
        for s in range(pair_graph.num_vertices):
            targets = {d for d, _, _ in plan.edges_from((s, src))}
            assert (s, dst) in targets

    def test_lca_broadcast_over_queries(self, medium_graph):
        plan = PROGRAMS["lca"].plan(medium_graph)
        queries = {key[0] for key in plan.initial}
        assert len(queries) == 2
        for src in plan.out_edges:
            assert src[0] in queries


class TestAggregatedDuplicates:
    def test_duplicate_base_facts_aggregated(self):
        from repro.engine import Database

        source = """
        best(X, v) :- seeds(X, v).
        best(Y, min[v1]) :- best(X, v), e(X, Y), v1 = v + 1.
        """
        db = Database()
        db.add_facts("seeds", [(1, 5), (1, 3)])
        db.add_facts("e", [(1, 2)])
        plan = compile_plan(analyze(parse_program(source)), db)
        assert plan.initial == {1: 3}


class TestRepr:
    def test_plan_repr(self, diamond_db, sssp_source):
        plan = compile_plan(analyze(parse_program(sssp_source, name="sssp")), diamond_db)
        text = repr(plan)
        assert "sssp" in text and "4 keys" in text and "5 edges" in text
