"""Async engine internals: flush paths, deferral wake-up, AAP adaptation."""

import pytest

from repro.distributed import (
    AAPEngine,
    AsyncEngine,
    ClusterConfig,
    UnifiedEngine,
)
from repro.distributed.buffers import BufferPolicy
from repro.engine import MRAEvaluator
from repro.graphs import rmat
from repro.programs import PROGRAMS


@pytest.fixture(scope="module")
def graph():
    return rmat(60, 300, seed=91, name="async-internals")


@pytest.fixture(scope="module")
def cluster():
    return ClusterConfig(num_workers=6)


class TestFlushPaths:
    def test_huge_beta_relies_on_timer_flush(self, graph, cluster):
        """With beta far above any payload, only tau-based flushes move
        data between workers -- the run must still converge correctly."""
        plan = PROGRAMS["sssp"].plan(graph)
        policy = BufferPolicy(initial_beta=10**9, tau=2e-3, adaptive=False)
        result = AsyncEngine(plan, cluster, buffer_policy=policy).run()
        expected = MRAEvaluator(plan).run().values
        assert result.values == expected
        assert result.counters.messages > 0

    def test_tiny_beta_floods_messages(self, graph, cluster):
        plan = PROGRAMS["sssp"].plan(graph)
        eager = AsyncEngine(
            plan, cluster,
            buffer_policy=BufferPolicy(initial_beta=1, adaptive=False),
        ).run()
        lazy = AsyncEngine(
            plan, cluster,
            buffer_policy=BufferPolicy(initial_beta=512, adaptive=False),
        ).run()
        assert eager.counters.messages > 2 * lazy.counters.messages
        assert eager.values == lazy.values

    def test_message_tuples_bounded_by_combining(self, graph, cluster):
        """Buffers g-combine per-destination updates, so message tuples
        cannot exceed raw F' applications."""
        plan = PROGRAMS["pagerank"].plan(graph)
        result = UnifiedEngine(plan, cluster).run()
        assert result.counters.message_tuples <= result.counters.fprime_applications


class TestDeferralWakeup:
    def test_deferred_deltas_wake_on_delivery(self, graph, cluster):
        """A worker whose whole shard is below the importance threshold
        idles; arriving contributions must reactivate it (no livelock,
        correct result)."""
        plan = PROGRAMS["pagerank"].plan(graph)
        # aggressive threshold: plenty of deferral traffic
        result = UnifiedEngine(
            plan, cluster, importance_threshold=1e-4
        ).run()
        expected = MRAEvaluator(plan).run().values
        for key, value in expected.items():
            assert result.values[key] == pytest.approx(value, abs=5e-2)
        assert result.stop_reason in ("epsilon", "fixpoint")

    def test_zero_threshold_equals_plain_async(self, graph, cluster):
        plan = PROGRAMS["pagerank"].plan(graph)
        unified = UnifiedEngine(
            plan, cluster, importance_threshold=0.0,
            buffer_policy=BufferPolicy(initial_beta=64, adaptive=False),
        ).run()
        plain = AsyncEngine(
            plan, cluster,
            buffer_policy=BufferPolicy(initial_beta=64, adaptive=False),
        ).run()
        assert unified.counters.fprime_applications == plain.counters.fprime_applications


class TestAAPAdaptation:
    def test_aap_differs_from_plain_async_in_batching(self, graph, cluster):
        plan = PROGRAMS["pagerank"].plan(graph)
        aap = AAPEngine(plan, cluster, stream_batch=8).run()
        expected = MRAEvaluator(plan).run().values
        for key, value in expected.items():
            assert aap.values[key] == pytest.approx(value, abs=2e-3)

    def test_aap_stream_batch_bounds_work_amplification(self, graph, cluster):
        """Flooded AAP workers switch to sweeps, so even with a tiny
        stream batch the work amplification stays bounded."""
        plan = PROGRAMS["pagerank"].plan(graph)
        aap = AAPEngine(plan, cluster, stream_batch=4).run()
        sweep = AsyncEngine(plan, cluster).run()
        assert (
            aap.counters.fprime_applications
            < 5 * sweep.counters.fprime_applications
        )


class TestStopClock:
    def test_fixpoint_time_not_quantised_to_master_interval(self, graph, cluster):
        plan = PROGRAMS["sssp"].plan(graph)
        result = AsyncEngine(plan, cluster).run()
        interval = cluster.cost.termination_interval
        # the reported time is the last work event, not a master tick
        assert result.simulated_seconds % interval != 0.0
