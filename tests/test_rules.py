"""Rule-body evaluation: joins, assignments, filters, head construction."""

import pytest

from repro.datalog import AnalysisError, analyze, parse_program
from repro.engine import Database
from repro.engine.relation import Relation
from repro.engine.result import WorkCounters
from repro.engine.rules import (
    aggregate_contributions,
    evaluate_aux_rules,
    evaluate_rule_bodies,
    iter_bindings,
    to_number,
)
from repro.aggregates import MIN, SUM


def bindings_of(source_rule: str, db: Database, **kwargs):
    rule = parse_program(source_rule).rules[0]
    atoms = rule.bodies[0].atoms
    return list(iter_bindings(atoms, db, **kwargs))


class TestJoins:
    def test_two_way_join(self, diamond_db):
        found = bindings_of("p(X, Z) :- edge(X, Y, a), edge(Y, Z, b).", diamond_db)
        pairs = {(b["X"], b["Z"]) for b in found}
        assert (1, 2) in pairs  # 1 -> 3 -> 2
        assert (1, 4) in pairs

    def test_join_uses_shared_variable(self, diamond_db):
        found = bindings_of("p(Y) :- edge(1, Y, w).", diamond_db)
        assert {b["Y"] for b in found} == {2, 3}

    def test_wildcard_matches_anything(self, diamond_db):
        found = bindings_of("p(X) :- edge(X, _, _).", diamond_db)
        assert {b["X"] for b in found} == {1, 2, 3}

    def test_repeated_variable_filters(self):
        db = Database()
        db.add_facts("edge", [(1, 1), (1, 2)])
        found = bindings_of("p(X) :- edge(X, X).", db)
        assert [b["X"] for b in found] == [1]

    def test_counters_track_scans(self, diamond_db):
        counters = WorkCounters()
        bindings_of("p(X, Y) :- edge(X, Y, w).", diamond_db, counters=counters)
        assert counters.tuples_scanned == 5


class TestComparisons:
    def test_assignment(self, diamond_db):
        found = bindings_of("p(X, d) :- X = 1, d = 0.", diamond_db)
        assert found == [{"X": 1, "d": 0}]

    def test_assignment_from_joined_values(self, diamond_db):
        found = bindings_of(
            "p(Y, dy) :- edge(1, Y, w), dy = w * 2.", diamond_db
        )
        assert {(b["Y"], b["dy"]) for b in found} == {(2, 8), (3, 2)}

    def test_filter(self, diamond_db):
        found = bindings_of("p(X, Y) :- edge(X, Y, w), w > 2.", diamond_db)
        assert {(b["X"], b["Y"]) for b in found} == {(1, 2), (3, 4)}

    def test_equality_filter_on_bound_variable(self, diamond_db):
        found = bindings_of("p(X, Y) :- edge(X, Y, w), X = Y.", diamond_db)
        assert found == []

    def test_comparison_deferred_until_bound(self, diamond_db):
        # dy is defined after the predicate that binds w
        found = bindings_of(
            "p(Y) :- dy = w + 1, edge(1, Y, w).", diamond_db
        )
        assert {b["dy"] for b in found} == {5, 2}

    def test_unresolvable_comparison_raises(self, diamond_db):
        with pytest.raises(AnalysisError, match="unbound"):
            bindings_of("p(X) :- edge(X, _, _), q > 1.", diamond_db)


class TestOverrides:
    def test_override_replaces_relation(self, diamond_db):
        delta = Relation("edge", 3, [(9, 9, 9)])
        found = bindings_of(
            "p(X, Y) :- edge(X, Y, w).", diamond_db, overrides={"edge": delta}
        )
        assert [(b["X"], b["Y"]) for b in found] == [(9, 9)]


class TestHeads:
    def test_key_value_split(self, diamond_db):
        rule = parse_program("p(X, Y, w) :- edge(X, Y, w).").rules[0]
        results = evaluate_rule_bodies(rule, diamond_db)
        assert ((1, 2), 4) in results

    def test_scalar_key(self, diamond_db):
        rule = parse_program("p(Y, w) :- edge(1, Y, w).").rules[0]
        results = evaluate_rule_bodies(rule, diamond_db)
        assert set(results) == {(2, 4), (3, 1)}

    def test_count_head_contributes_one(self, diamond_db):
        rule = parse_program("deg(X, count[Y]) :- edge(X, Y, w).").rules[0]
        results = evaluate_rule_bodies(rule, diamond_db)
        assert all(value == 1 for _, value in results)

    def test_fact_rule(self):
        rule = parse_program("seed(7, 0).").rules[0]
        assert evaluate_rule_bodies(rule, Database()) == [(7, 0)]


class TestAggregation:
    def test_min_grouping(self):
        grouped = aggregate_contributions(MIN, [(1, 5), (1, 3), (2, 7)])
        assert grouped == {1: 3, 2: 7}

    def test_sum_grouping(self):
        grouped = aggregate_contributions(SUM, [(1, 5), (1, 3), (2, 7)])
        assert grouped == {1: 8, 2: 7}


class TestAuxRules:
    def test_degree_materialised(self, triangle_db, pagerank_source):
        analysis = analyze(parse_program(pagerank_source))
        db = triangle_db.copy()
        evaluate_aux_rules(analysis, db)
        degrees = {row[0]: row[1] for row in db.relation("degree")}
        assert degrees == {1: 1, 2: 2, 3: 1}

    def test_missing_dependency_detected(self):
        source = """
        a(X, v) :- b(X, v).
        b(X, v) :- missing_after(X, v).
        r(X, min[v]) :- r(Y, v), e(Y, X).
        """
        # 'a' depends on 'b' before 'b' is materialised
        program = parse_program(source)
        analysis = analyze(program)
        db = Database()
        db.add_facts("e", [(1, 2)])
        with pytest.raises(AnalysisError, match="before it is materialised"):
            evaluate_aux_rules(analysis, db)


class TestToNumber:
    def test_integral_fraction_to_int(self):
        from fractions import Fraction

        assert to_number(Fraction(4, 2)) == 2
        assert isinstance(to_number(Fraction(4, 2)), int)

    def test_nonintegral_fraction_to_float(self):
        from fractions import Fraction

        assert to_number(Fraction(1, 2)) == 0.5

    def test_passthrough(self):
        assert to_number(7) == 7
